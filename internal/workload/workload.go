package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"powerchief/internal/query"
	"powerchief/internal/sim"
	"powerchief/internal/stage"
)

// Source yields the instantaneous arrival rate (queries per second) at any
// virtual time. Rates must be bounded by MaxRate for thinning to be exact.
type Source interface {
	RateAt(t time.Duration) float64
	MaxRate() float64
}

// Constant is a fixed-rate Source.
type Constant float64

// RateAt implements Source.
func (c Constant) RateAt(time.Duration) float64 { return float64(c) }

// MaxRate implements Source.
func (c Constant) MaxRate() float64 { return float64(c) }

// Phase is one segment of a piecewise-constant rate trace.
type Phase struct {
	Until time.Duration // phase applies while t < Until
	Rate  float64       // queries per second
}

// Trace is a piecewise-constant rate profile. After the last phase the final
// rate persists.
type Trace struct {
	Phases []Phase
}

// NewTrace validates phase ordering and returns the trace.
func NewTrace(phases ...Phase) (*Trace, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: trace needs at least one phase")
	}
	for i, p := range phases {
		if p.Rate < 0 {
			return nil, fmt.Errorf("workload: phase %d has negative rate", i)
		}
		if i > 0 && phases[i].Until <= phases[i-1].Until {
			return nil, fmt.Errorf("workload: phase %d boundary %v not after %v", i, phases[i].Until, phases[i-1].Until)
		}
	}
	return &Trace{Phases: phases}, nil
}

// RateAt implements Source.
func (tr *Trace) RateAt(t time.Duration) float64 {
	for _, p := range tr.Phases {
		if t < p.Until {
			return p.Rate
		}
	}
	return tr.Phases[len(tr.Phases)-1].Rate
}

// MaxRate implements Source.
func (tr *Trace) MaxRate() float64 {
	max := 0.0
	for _, p := range tr.Phases {
		if p.Rate > max {
			max = p.Rate
		}
	}
	return max
}

// Scaled multiplies a Source's rate by a constant factor.
type Scaled struct {
	Base   Source
	Factor float64
}

// RateAt implements Source.
func (s Scaled) RateAt(t time.Duration) float64 { return s.Base.RateAt(t) * s.Factor }

// MaxRate implements Source.
func (s Scaled) MaxRate() float64 { return s.Base.MaxRate() * s.Factor }

// Level names the three representative load levels of the evaluation.
type Level int

const (
	Low Level = iota
	Medium
	High
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Utilization returns the load level's target utilization of the baseline
// configuration: low and medium leave headroom; high transiently saturates
// the bottleneck stage so queuing dominates.
func (l Level) Utilization() float64 {
	switch l {
	case Low:
		return 0.50
	case Medium:
		return 0.90
	case High:
		return 1.15
	default:
		panic(fmt.Sprintf("workload: unknown load level %d", int(l)))
	}
}

// ParseLevel converts a level name.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "low":
		return Low, nil
	case "medium":
		return Medium, nil
	case "high":
		return High, nil
	default:
		return 0, fmt.Errorf("workload: unknown load level %q", s)
	}
}

// WorkDrawer supplies the per-stage work matrix of a freshly arrived query;
// app.App.DrawWork curried with the stage layout satisfies this.
type WorkDrawer func(rng *rand.Rand) [][]time.Duration

// Generator drives Poisson arrivals into a stage.System on a simulation
// engine. Time-varying rates are realized by thinning against the source's
// MaxRate, which keeps the process exact for piecewise-constant traces.
type Generator struct {
	eng     *sim.Engine
	sys     *stage.System
	src     Source
	draw    WorkDrawer
	rng     *rand.Rand
	until   time.Duration
	nextID  query.ID
	issued  uint64
	paused  bool
	pending *sim.Event
}

// NewGenerator prepares a generator that submits queries from virtual time 0
// until the given horizon.
func NewGenerator(eng *sim.Engine, sys *stage.System, src Source, draw WorkDrawer, rng *rand.Rand, until time.Duration) *Generator {
	if eng == nil || sys == nil || src == nil || draw == nil || rng == nil {
		panic("workload: NewGenerator requires non-nil engine, system, source, drawer and rng")
	}
	if until <= 0 {
		panic("workload: generation horizon must be positive")
	}
	return &Generator{eng: eng, sys: sys, src: src, draw: draw, rng: rng, until: until}
}

// Issued returns the number of queries submitted so far.
func (g *Generator) Issued() uint64 { return g.issued }

// Start schedules the arrival process. Must be called before running the
// engine.
func (g *Generator) Start() {
	g.scheduleNext()
}

// Pause suspends the arrival process by cancelling the pending candidate
// arrival: queries already submitted keep flowing through the system, no
// new ones arrive. Used by the multi-tenant harness when a tenant is
// evicted mid-run. Safe to call repeatedly.
func (g *Generator) Pause() {
	if g.pending != nil {
		g.eng.Cancel(g.pending)
		g.pending = nil
	}
	g.paused = true
}

// Resume restarts a paused arrival process from the current virtual
// instant; the generation horizon is unchanged. A no-op when not paused.
func (g *Generator) Resume() {
	if !g.paused {
		return
	}
	g.paused = false
	g.scheduleNext()
}

func (g *Generator) scheduleNext() {
	maxRate := g.src.MaxRate()
	if maxRate <= 0 {
		return
	}
	// Thinning: candidate arrivals at the max rate, accepted with
	// probability rate(t)/maxRate.
	delay := time.Duration(g.rng.ExpFloat64() / maxRate * float64(time.Second))
	if delay <= 0 {
		delay = time.Nanosecond
	}
	g.pending = g.eng.Schedule(delay, func() {
		g.pending = nil
		now := g.eng.Now()
		if now > g.until {
			return
		}
		if accept := g.src.RateAt(now) / maxRate; g.rng.Float64() < accept {
			g.nextID++
			q := query.New(g.nextID, now, g.draw(g.rng))
			g.issued++
			g.sys.Submit(q)
		}
		g.scheduleNext()
	})
}

// RateForUtilization converts a target utilization of a configuration's
// capacity into an arrival rate in qps.
func RateForUtilization(capacityQPS, utilization float64) float64 {
	if capacityQPS <= 0 || math.IsInf(capacityQPS, 0) || math.IsNaN(capacityQPS) {
		panic(fmt.Sprintf("workload: invalid capacity %v", capacityQPS))
	}
	return capacityQPS * utilization
}

// BurstTrace builds a bursty load profile: a base rate with periodic bursts
// of burstLen at burstRate, repeating every period until the horizon. User-
// facing load is bursty (§1), and burstiness is what separates the QoS
// power-conservation policies: a stage-agnostic controller must ride every
// burst with the whole deployment at high power, while a stage-aware one
// boosts only the bottleneck.
func BurstTrace(baseRate, burstRate float64, period, burstLen, horizon time.Duration) (*Trace, error) {
	if period <= 0 || burstLen <= 0 || burstLen >= period {
		return nil, fmt.Errorf("workload: burst length must fall inside the period")
	}
	var phases []Phase
	for at := time.Duration(0); at < horizon; at += period {
		phases = append(phases,
			Phase{Until: at + period - burstLen, Rate: baseRate},
			Phase{Until: at + period, Rate: burstRate},
		)
	}
	phases = append(phases, Phase{Until: horizon + period, Rate: baseRate})
	return NewTrace(phases...)
}

// Figure11Trace builds the time-varying load profile of the runtime
// behaviour experiment: load ramps up over the first 125 s, dips low between
// 175 s and 275 s, then oscillates between medium and high — reproducing the
// bottleneck bouncing between stages the paper describes (§8.2).
func Figure11Trace(baseRate float64) *Trace {
	tr, err := NewTrace(
		Phase{Until: 50 * time.Second, Rate: baseRate * 0.6},
		Phase{Until: 125 * time.Second, Rate: baseRate * 1.15},
		Phase{Until: 175 * time.Second, Rate: baseRate * 0.9},
		Phase{Until: 275 * time.Second, Rate: baseRate * 0.3},
		Phase{Until: 400 * time.Second, Rate: baseRate * 1.1},
		Phase{Until: 500 * time.Second, Rate: baseRate * 0.7},
		Phase{Until: 650 * time.Second, Rate: baseRate * 1.2},
		Phase{Until: 775 * time.Second, Rate: baseRate * 0.8},
		Phase{Until: 900 * time.Second, Rate: baseRate * 1.05},
	)
	if err != nil {
		panic(err) // static construction cannot fail
	}
	return tr
}
