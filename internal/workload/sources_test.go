package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"powerchief/internal/query"
)

func TestDiurnalShape(t *testing.T) {
	d, err := NewDiurnal(1, 5, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxRate() != 5 {
		t.Errorf("MaxRate = %v", d.MaxRate())
	}
	// Midpoint at t=0, crest a quarter period in, trough at three quarters.
	if r := d.RateAt(0); math.Abs(r-3) > 1e-9 {
		t.Errorf("RateAt(0) = %v, want 3", r)
	}
	if r := d.RateAt(6 * time.Hour); math.Abs(r-5) > 1e-9 {
		t.Errorf("RateAt(T/4) = %v, want 5", r)
	}
	if r := d.RateAt(18 * time.Hour); math.Abs(r-1) > 1e-9 {
		t.Errorf("RateAt(3T/4) = %v, want 1", r)
	}
	// Rates never leave [base, peak].
	for h := 0; h < 48; h++ {
		r := d.RateAt(time.Duration(h) * time.Hour)
		if r < 1-1e-9 || r > 5+1e-9 {
			t.Fatalf("RateAt(%dh) = %v outside [1,5]", h, r)
		}
	}
}

func TestNewDiurnalValidates(t *testing.T) {
	if _, err := NewDiurnal(5, 1, time.Hour); err == nil {
		t.Error("peak below base accepted")
	}
	if _, err := NewDiurnal(-1, 1, time.Hour); err == nil {
		t.Error("negative base accepted")
	}
	if _, err := NewDiurnal(1, 2, 0); err == nil {
		t.Error("zero period accepted")
	}
}

func TestDiurnalDrivesGenerator(t *testing.T) {
	eng, sys, a := buildSystem(t)
	d, err := NewDiurnal(0.5, 4, 400*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	gen := NewGenerator(eng, sys, d, func(r *rand.Rand) [][]time.Duration {
		return a.DrawWork(r, []int{1, 1, 1})
	}, rng, 400*time.Second)
	gen.Start()
	eng.RunUntil(400 * time.Second)
	// Mean rate = 2.25 qps over a full cycle → ≈900 arrivals.
	got := float64(gen.Issued())
	if got < 700 || got > 1100 {
		t.Errorf("diurnal issued %v queries over one cycle, want ≈900", got)
	}
}

func TestReplayOrderingAndAccessors(t *testing.T) {
	r, err := NewReplay([]time.Duration{3 * time.Second, time.Second, 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 || r.Horizon() != 3*time.Second {
		t.Errorf("Len=%d Horizon=%v", r.Len(), r.Horizon())
	}
	if _, err := NewReplay(nil); err == nil {
		t.Error("empty replay accepted")
	}
	if _, err := NewReplay([]time.Duration{-time.Second}); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestParseReplayFormats(t *testing.T) {
	input := `
# production trace, offsets from start
0.5
1s
1.5
2500ms
`
	r, err := ParseReplay(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Horizon() != 2500*time.Millisecond {
		t.Errorf("Horizon = %v", r.Horizon())
	}
	if _, err := ParseReplay(strings.NewReader("garbage line")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReplaySchedulesExactArrivals(t *testing.T) {
	eng, sys, a := buildSystem(t)
	r, err := NewReplay([]time.Duration{
		time.Second, 2 * time.Second, 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []time.Duration
	sys.OnComplete(func(q *query.Query) { arrivals = append(arrivals, q.Arrival) })
	rng := rand.New(rand.NewSource(1))
	n := r.Schedule(eng, sys, func(rg *rand.Rand) [][]time.Duration {
		return a.DrawWork(rg, []int{1, 1, 1})
	}, rng)
	if n != 3 {
		t.Fatalf("scheduled %d", n)
	}
	eng.Run()
	if len(arrivals) != 3 {
		t.Fatalf("completed %d", len(arrivals))
	}
	want := []time.Duration{time.Second, 2 * time.Second, 5 * time.Second}
	for i, at := range arrivals {
		if at != want[i] {
			t.Errorf("arrival %d at %v, want %v", i, at, want[i])
		}
	}
}
