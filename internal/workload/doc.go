// Package workload generates the open-loop query load that drives the
// experiments: Poisson arrivals at a configurable rate (the paper's load
// generator, §8.1), piecewise-constant rate traces for the time-varying
// runtime-behaviour experiments (Figure 11), and the three representative
// load levels (high, medium, low) defined relative to the baseline
// configuration's capacity.
//
// Entry points: Source yields inter-arrival gaps — Constant, Trace (see
// BurstTrace and Figure11Trace), Diurnal and Replay implement it; Level and
// RateForUtilization anchor "low/medium/high" to a configuration's measured
// capacity. This package feeds the simulation harness in virtual time;
// internal/loadgen is its wall-clock counterpart for benchmarking real
// engines, and DESIGN.md §5e contrasts the two.
package workload
