package cmp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRooflineProfileBounds(t *testing.T) {
	p := NewRooflineProfile(0.3)
	if r := p.ExecRatio(0); math.Abs(r-1) > 1e-12 {
		t.Errorf("ExecRatio(min) = %v, want 1", r)
	}
	// At max frequency: 0.7·(1.2/2.4) + 0.3 = 0.65.
	if r := p.ExecRatio(MaxLevel); math.Abs(r-0.65) > 1e-9 {
		t.Errorf("ExecRatio(max) = %v, want 0.65", r)
	}
}

func TestRooflineCPUBoundIsLinear(t *testing.T) {
	p := NewRooflineProfile(0)
	// Perfectly CPU-bound: exec time scales as f_min/f.
	if s := Speedup(p, 0, MaxLevel); math.Abs(s-2.0) > 1e-9 {
		t.Errorf("CPU-bound speedup min→max = %v, want 2.0", s)
	}
}

func TestRooflineFullyMemBoundGainsNothing(t *testing.T) {
	p := NewRooflineProfile(1)
	for l := Level(0); l < NumLevels; l++ {
		if r := p.ExecRatio(l); math.Abs(r-1) > 1e-12 {
			t.Errorf("mem-bound ExecRatio(%v) = %v, want 1", l, r)
		}
	}
}

func TestRooflineMonotoneDecreasing(t *testing.T) {
	for _, m := range []float64{0, 0.15, 0.4, 0.8} {
		p := NewRooflineProfile(m)
		for l := Level(1); l < NumLevels; l++ {
			if p.ExecRatio(l) > p.ExecRatio(l-1)+1e-12 {
				t.Errorf("m=%v: ratio increases at %v", m, l)
			}
		}
	}
}

func TestNewRooflineProfileValidates(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRooflineProfile(%v) did not panic", bad)
				}
			}()
			NewRooflineProfile(bad)
		}()
	}
}

func TestAlphaAndSpeedupInverse(t *testing.T) {
	p := NewRooflineProfile(0.25)
	a := Alpha(p, MidLevel, MaxLevel)
	s := Speedup(p, MidLevel, MaxLevel)
	if math.Abs(a*s-1) > 1e-12 {
		t.Errorf("Alpha·Speedup = %v, want 1", a*s)
	}
	if a >= 1 {
		t.Errorf("upward Alpha = %v, want < 1", a)
	}
}

func TestTableProfileValidate(t *testing.T) {
	var tp TableProfile
	for l := Level(0); l < NumLevels; l++ {
		tp[l] = 1 - 0.02*float64(l)
	}
	if err := tp.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	if got := tp.ExecRatio(3); math.Abs(got-0.94) > 1e-12 {
		t.Errorf("ExecRatio(3) = %v", got)
	}

	bad := tp
	bad[0] = 0.9
	if bad.Validate() == nil {
		t.Error("profile with ExecRatio(0) != 1 accepted")
	}
	bad2 := tp
	bad2[5] = bad2[4] + 0.1
	if bad2.Validate() == nil {
		t.Error("increasing profile accepted")
	}
	bad3 := tp
	bad3[MaxLevel] = -0.1
	if bad3.Validate() == nil {
		t.Error("negative profile accepted")
	}
}

// Property: for any mem-bound fraction and any pair of levels l ≤ h, alpha is
// in (0, 1] and speedup never exceeds the frequency ratio.
func TestPropertyAlphaBounded(t *testing.T) {
	f := func(mRaw float64, li, hi uint8) bool {
		m := math.Abs(math.Mod(mRaw, 1))
		p := NewRooflineProfile(m)
		l := Level(int(li) % NumLevels)
		h := Level(int(hi) % NumLevels)
		if l > h {
			l, h = h, l
		}
		a := Alpha(p, l, h)
		if a <= 0 || a > 1+1e-12 {
			return false
		}
		fratio := float64(h.GHz() / l.GHz())
		return Speedup(p, l, h) <= fratio+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
