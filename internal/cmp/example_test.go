package cmp_test

import (
	"fmt"

	"powerchief/internal/cmp"
)

// Example walks the power-recycling arithmetic at the heart of the paper:
// freeing two donor cores to the DVFS floor pays for a third mid-frequency
// instance within the 13.56 W Table 2 budget.
func Example() {
	m := cmp.DefaultModel()
	chip := cmp.NewChip(16, m, 13.56)

	// Stage-agnostic baseline: three instances at the medial 1.8 GHz.
	a, _ := chip.Allocate(cmp.MidLevel)
	b, _ := chip.Allocate(cmp.MidLevel)
	if _, err := chip.Allocate(cmp.MidLevel); err != nil {
		fmt.Println(err)
	}
	fmt.Printf("draw %.2fW of %.2fW, headroom %.2fW\n",
		float64(chip.Draw()), float64(chip.Budget()), float64(chip.Headroom()))

	// A fourth instance at 1.8 GHz does not fit...
	_, err := chip.Allocate(cmp.MidLevel)
	fmt.Println("clone without recycling:", err != nil)

	// ...until power is recycled from two donors down to the floor.
	chip.SetLevel(a, 0)
	chip.SetLevel(b, 0)
	_, err = chip.Allocate(cmp.MidLevel)
	fmt.Println("clone after recycling:", err == nil)
	// Output:
	// draw 13.56W of 13.56W, headroom 0.00W
	// clone without recycling: true
	// clone after recycling: true
}

// ExampleAlpha shows the offline-profiling ratio α of Equation 3.
func ExampleAlpha() {
	cpuBound := cmp.NewRooflineProfile(0)
	memBound := cmp.NewRooflineProfile(0.8)
	fmt.Printf("CPU-bound 1.2→2.4GHz: exec time ×%.2f\n", cmp.Alpha(cpuBound, 0, cmp.MaxLevel))
	fmt.Printf("mem-bound 1.2→2.4GHz: exec time ×%.2f\n", cmp.Alpha(memBound, 0, cmp.MaxLevel))
	// Output:
	// CPU-bound 1.2→2.4GHz: exec time ×0.50
	// mem-bound 1.2→2.4GHz: exec time ×0.90
}
