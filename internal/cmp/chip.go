package cmp

import (
	"errors"
	"fmt"
	"sort"
)

// Chip models the power-constrained CMP: a fixed set of physical cores, each
// either free or allocated to one service instance at a discrete frequency
// level, under a hard power budget. Every allocation and DVFS action is
// checked against the budget; an action that would exceed it fails rather
// than oversubscribing, which is the invariant the paper's power reallocator
// is built around.
//
// Chip is not safe for concurrent use; the DES engine is single-threaded and
// the live engine serializes actuation through its controller goroutine.
type Chip struct {
	model  PowerModel
	budget Watts
	levels []Level // per-core frequency level; -1 = free
	inUse  int
	drawn  Watts
}

// CoreID identifies a physical core on the chip.
type CoreID int

// ErrNoFreeCore is returned when every physical core is allocated.
var ErrNoFreeCore = errors.New("cmp: no free core")

// ErrBudgetExceeded is returned when an action would push total draw past the
// budget.
var ErrBudgetExceeded = errors.New("cmp: power budget exceeded")

// NewChip creates a chip with n cores governed by the model and budget.
func NewChip(n int, model PowerModel, budget Watts) *Chip {
	if n <= 0 {
		panic("cmp: chip needs at least one core")
	}
	if model == nil {
		panic("cmp: nil power model")
	}
	if budget <= 0 {
		panic("cmp: power budget must be positive")
	}
	levels := make([]Level, n)
	for i := range levels {
		levels[i] = -1
	}
	return &Chip{model: model, budget: budget, levels: levels}
}

// Cores returns the number of physical cores.
func (c *Chip) Cores() int { return len(c.levels) }

// InUse returns the number of allocated cores.
func (c *Chip) InUse() int { return c.inUse }

// Free returns the number of unallocated cores.
func (c *Chip) Free() int { return len(c.levels) - c.inUse }

// Budget returns the chip power budget.
func (c *Chip) Budget() Watts { return c.budget }

// SetBudget changes the power budget. Lowering it below the current draw is
// rejected; the caller must recycle power first.
func (c *Chip) SetBudget(b Watts) error {
	if b < c.drawn-1e-9 {
		return fmt.Errorf("%w: new budget %.2fW below current draw %.2fW", ErrBudgetExceeded, float64(b), float64(c.drawn))
	}
	c.budget = b
	return nil
}

// Draw returns the total power currently drawn by allocated cores.
func (c *Chip) Draw() Watts { return c.drawn }

// Headroom returns the unallocated portion of the budget.
func (c *Chip) Headroom() Watts { return c.budget - c.drawn }

// Model returns the chip's power model.
func (c *Chip) Model() PowerModel { return c.model }

// Level returns the frequency level of core id, or false if the core is free.
func (c *Chip) Level(id CoreID) (Level, bool) {
	if int(id) < 0 || int(id) >= len(c.levels) {
		panic(fmt.Sprintf("cmp: core %d out of range", id))
	}
	l := c.levels[id]
	if l < 0 {
		return 0, false
	}
	return l, true
}

// Allocate claims a free core at the given level. It fails with ErrNoFreeCore
// when all cores are taken and ErrBudgetExceeded when the core's power would
// not fit in the remaining headroom.
func (c *Chip) Allocate(l Level) (CoreID, error) {
	if !l.Valid() {
		return 0, fmt.Errorf("cmp: invalid frequency level %d", int(l))
	}
	id := CoreID(-1)
	for i, lv := range c.levels {
		if lv < 0 {
			id = CoreID(i)
			break
		}
	}
	if id < 0 {
		return 0, ErrNoFreeCore
	}
	p := c.model.Power(l)
	if c.drawn+p > c.budget+1e-9 {
		return 0, fmt.Errorf("%w: need %.2fW, headroom %.2fW", ErrBudgetExceeded, float64(p), float64(c.Headroom()))
	}
	c.levels[id] = l
	c.inUse++
	c.drawn += p
	return id, nil
}

// Release frees an allocated core, returning its power to the headroom.
func (c *Chip) Release(id CoreID) error {
	l, ok := c.Level(id)
	if !ok {
		return fmt.Errorf("cmp: release of free core %d", id)
	}
	c.levels[id] = -1
	c.inUse--
	c.drawn -= c.model.Power(l)
	if c.drawn < 0 {
		c.drawn = 0
	}
	return nil
}

// SetLevel performs a DVFS transition on an allocated core. Raising the level
// fails with ErrBudgetExceeded when the extra power does not fit.
func (c *Chip) SetLevel(id CoreID, l Level) error {
	if !l.Valid() {
		return fmt.Errorf("cmp: invalid frequency level %d", int(l))
	}
	cur, ok := c.Level(id)
	if !ok {
		return fmt.Errorf("cmp: DVFS on free core %d", id)
	}
	delta := c.model.Power(l) - c.model.Power(cur)
	if c.drawn+delta > c.budget+1e-9 {
		return fmt.Errorf("%w: DVFS to %v needs %.2fW, headroom %.2fW", ErrBudgetExceeded, l, float64(delta), float64(c.Headroom()))
	}
	c.levels[id] = l
	c.drawn += delta
	return nil
}

// HighestAffordableRaise returns the highest level core id could be raised to
// within the current headroom. The second result is false when the core is
// free.
func (c *Chip) HighestAffordableRaise(id CoreID) (Level, bool) {
	cur, ok := c.Level(id)
	if !ok {
		return 0, false
	}
	budget := c.model.Power(cur) + c.Headroom()
	l, _ := HighestAffordable(c.model, budget)
	if l < cur {
		// Headroom is never negative, so this cannot happen; keep the
		// invariant explicit regardless.
		l = cur
	}
	return l, true
}

// Snapshot returns the allocated cores and their levels, sorted by core ID.
func (c *Chip) Snapshot() []CoreState {
	out := make([]CoreState, 0, c.inUse)
	for i, l := range c.levels {
		if l >= 0 {
			out = append(out, CoreState{ID: CoreID(i), Level: l, Power: c.model.Power(l)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CoreState describes one allocated core.
type CoreState struct {
	ID    CoreID
	Level Level
	Power Watts
}

// CheckInvariant recomputes the drawn power from scratch and verifies the
// bookkeeping and the budget. Used by tests and assertions.
func (c *Chip) CheckInvariant() error {
	var sum Watts
	used := 0
	for _, l := range c.levels {
		if l >= 0 {
			if !l.Valid() {
				return fmt.Errorf("cmp: core holds invalid level %d", int(l))
			}
			sum += c.model.Power(l)
			used++
		}
	}
	if used != c.inUse {
		return fmt.Errorf("cmp: inUse=%d, recount=%d", c.inUse, used)
	}
	if !ApproxEqual(sum, c.drawn) {
		return fmt.Errorf("cmp: drawn=%.6f, recount=%.6f", float64(c.drawn), float64(sum))
	}
	if sum > c.budget+1e-6 {
		return fmt.Errorf("cmp: draw %.6fW exceeds budget %.6fW", float64(sum), float64(c.budget))
	}
	return nil
}
