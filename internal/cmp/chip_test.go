package cmp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestChip(budget Watts) *Chip {
	return NewChip(16, DefaultModel(), budget)
}

func TestAllocateReleaseAccounting(t *testing.T) {
	c := newTestChip(100)
	id, err := c.Allocate(MidLevel)
	if err != nil {
		t.Fatal(err)
	}
	if c.InUse() != 1 || c.Free() != 15 {
		t.Errorf("InUse=%d Free=%d after one allocation", c.InUse(), c.Free())
	}
	if math.Abs(float64(c.Draw()-4.52)) > 1e-9 {
		t.Errorf("Draw = %v, want 4.52", c.Draw())
	}
	if l, ok := c.Level(id); !ok || l != MidLevel {
		t.Errorf("Level(%d) = %v,%v", id, l, ok)
	}
	if err := c.Release(id); err != nil {
		t.Fatal(err)
	}
	if c.InUse() != 0 || c.Draw() != 0 {
		t.Errorf("InUse=%d Draw=%v after release", c.InUse(), c.Draw())
	}
	if _, ok := c.Level(id); ok {
		t.Error("released core still reports a level")
	}
}

func TestAllocateRespectsBudget(t *testing.T) {
	m := DefaultModel()
	// Budget fits exactly three cores at 1.8 GHz (Table 2 of the paper).
	c := NewChip(16, m, 13.56)
	for i := 0; i < 3; i++ {
		if _, err := c.Allocate(MidLevel); err != nil {
			t.Fatalf("allocation %d: %v", i, err)
		}
	}
	if _, err := c.Allocate(0); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("fourth allocation error = %v, want ErrBudgetExceeded", err)
	}
	if err := c.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateNoFreeCore(t *testing.T) {
	c := NewChip(2, DefaultModel(), 1000)
	for i := 0; i < 2; i++ {
		if _, err := c.Allocate(0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Allocate(0); !errors.Is(err, ErrNoFreeCore) {
		t.Fatalf("error = %v, want ErrNoFreeCore", err)
	}
}

func TestAllocateInvalidLevel(t *testing.T) {
	c := newTestChip(100)
	if _, err := c.Allocate(Level(42)); err == nil {
		t.Fatal("invalid level accepted")
	}
}

func TestSetLevelBudgetEnforced(t *testing.T) {
	m := DefaultModel()
	c := NewChip(16, m, 13.56)
	ids := make([]CoreID, 3)
	for i := range ids {
		id, err := c.Allocate(MidLevel)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	// Raising any core past the budget must fail.
	if err := c.SetLevel(ids[0], MaxLevel); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("raise error = %v, want ErrBudgetExceeded", err)
	}
	// Lower one core, then the freed power allows a raise elsewhere.
	if err := c.SetLevel(ids[1], 0); err != nil {
		t.Fatal(err)
	}
	freed := m.Power(MidLevel) - m.Power(0)
	target, ok := HighestAffordable(m, m.Power(MidLevel)+freed)
	if !ok || target <= MidLevel {
		t.Fatalf("unexpected affordable target %v", target)
	}
	if err := c.SetLevel(ids[0], target); err != nil {
		t.Fatalf("raise after recycle: %v", err)
	}
	if err := c.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestSetLevelOnFreeCore(t *testing.T) {
	c := newTestChip(100)
	if err := c.SetLevel(3, MidLevel); err == nil {
		t.Fatal("DVFS on free core accepted")
	}
}

func TestReleaseFreeCore(t *testing.T) {
	c := newTestChip(100)
	if err := c.Release(0); err == nil {
		t.Fatal("release of free core accepted")
	}
}

func TestSetBudget(t *testing.T) {
	c := newTestChip(100)
	if _, err := c.Allocate(MaxLevel); err != nil {
		t.Fatal(err)
	}
	if err := c.SetBudget(c.Draw() - 1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("shrink below draw error = %v", err)
	}
	if err := c.SetBudget(c.Draw()); err != nil {
		t.Fatalf("shrink to draw: %v", err)
	}
	if c.Headroom() > 1e-9 {
		t.Errorf("headroom = %v, want 0", c.Headroom())
	}
}

func TestHighestAffordableRaise(t *testing.T) {
	m := DefaultModel()
	c := NewChip(16, m, m.Power(MidLevel)+(m.Power(MidLevel+1)-m.Power(MidLevel))/2)
	id, err := c.Allocate(MidLevel)
	if err != nil {
		t.Fatal(err)
	}
	// Headroom is half a step: cannot raise.
	l, ok := c.HighestAffordableRaise(id)
	if !ok || l != MidLevel {
		t.Errorf("HighestAffordableRaise = %v,%v; want %v,true", l, ok, MidLevel)
	}
	if _, ok := c.HighestAffordableRaise(5); ok {
		t.Error("raise on free core reported ok")
	}
}

func TestSnapshotSorted(t *testing.T) {
	c := newTestChip(1000)
	for i := 0; i < 5; i++ {
		if _, err := c.Allocate(Level(i)); err != nil {
			t.Fatal(err)
		}
	}
	_ = c.Release(2)
	snap := c.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d cores, want 4", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].ID <= snap[i-1].ID {
			t.Fatal("snapshot not sorted by core ID")
		}
	}
}

func TestNewChipValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero cores":  func() { NewChip(0, DefaultModel(), 10) },
		"nil model":   func() { NewChip(4, nil, 10) },
		"zero budget": func() { NewChip(4, DefaultModel(), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewChip did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: under any random sequence of allocate / release / DVFS actions,
// the chip never exceeds its budget and its bookkeeping stays consistent.
func TestPropertyBudgetInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		budget := Watts(5 + rng.Float64()*60)
		c := NewChip(16, DefaultModel(), budget)
		var held []CoreID
		for i := 0; i < 300; i++ {
			switch rng.Intn(3) {
			case 0:
				if id, err := c.Allocate(Level(rng.Intn(NumLevels))); err == nil {
					held = append(held, id)
				}
			case 1:
				if len(held) > 0 {
					i := rng.Intn(len(held))
					if err := c.Release(held[i]); err != nil {
						return false
					}
					held = append(held[:i], held[i+1:]...)
				}
			case 2:
				if len(held) > 0 {
					id := held[rng.Intn(len(held))]
					// Error (budget) is acceptable; corruption is not.
					_ = c.SetLevel(id, Level(rng.Intn(NumLevels)))
				}
			}
			if err := c.CheckInvariant(); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
