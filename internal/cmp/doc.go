// Package cmp models the power-constrained chip multiprocessor that
// PowerChief manages: a set of cores with per-core DVFS over a discrete
// frequency ladder, an analytic per-core power model, per-service
// frequency-speedup profiles (the paper's "offline profiling"), and a Chip
// that enforces a hard power budget over every allocation and DVFS action.
//
// The evaluation platform of the paper (Intel Xeon E5-2630v3, Haswell) is
// simulated: 16 physical cores, frequencies adjustable from 1.2 GHz to
// 2.4 GHz in 0.1 GHz steps with fast (sub-microsecond) transitions, and the
// core-level power model the paper borrows from Adrenaline [22].
//
// Entry points: DefaultModel builds the ladder and power curve; NewChip
// wraps them with budget-enforced Allocate/Release/SetLevel; Level indexes
// the ladder; NewRooflineProfile captures a service's memory-boundness, and
// HighestAffordable answers "what frequency fits in this many watts" for
// policies and the harness. The budget invariant — the chip never admits an
// action that would exceed its budget — is what every Command Center policy
// leans on (see DESIGN.md).
package cmp
