package cmp

import "fmt"

// SpeedupProfile captures a service's latency response to frequency — the
// paper's "offline profiling" (§5.2): for each service the latency reduction
// at every frequency is measured once offline and consulted at runtime to
// estimate the benefit of frequency boosting.
//
// ExecRatio is the execution time at level l normalized to the execution time
// at the lowest level, so ExecRatio(0) == 1 and the ratio decreases
// monotonically with frequency. The α_lh of Equation 3 is
// ExecRatio(h)/ExecRatio(l).
type SpeedupProfile interface {
	ExecRatio(l Level) float64
}

// RooflineProfile is the default analytic profile: a fraction MemBound of the
// work does not scale with core frequency (memory stalls), the rest scales
// linearly:
//
//	ExecRatio(f) = (1 − MemBound)·f_min/f + MemBound
//
// MemBound = 0 is perfectly CPU-bound (linear speedup); MemBound = 1 gains
// nothing from DVFS.
type RooflineProfile struct {
	MemBound float64
}

// NewRooflineProfile validates the memory-bound fraction and returns the
// profile.
func NewRooflineProfile(memBound float64) RooflineProfile {
	if memBound < 0 || memBound > 1 {
		panic(fmt.Sprintf("cmp: memory-bound fraction %v outside [0,1]", memBound))
	}
	return RooflineProfile{MemBound: memBound}
}

// ExecRatio implements SpeedupProfile.
func (p RooflineProfile) ExecRatio(l Level) float64 {
	f := float64(l.GHz())
	return (1-p.MemBound)*float64(MinGHz)/f + p.MemBound
}

// TableProfile is a SpeedupProfile backed by explicit measurements, one entry
// per frequency level, normalized so entry 0 is 1.0.
type TableProfile [NumLevels]float64

// ExecRatio implements SpeedupProfile.
func (t *TableProfile) ExecRatio(l Level) float64 {
	if !l.Valid() {
		panic(fmt.Sprintf("cmp: invalid frequency level %d", int(l)))
	}
	return t[l]
}

// Validate checks the invariants every boosting estimate relies on: the
// ratios start at 1, stay positive, and never increase with frequency.
func (t *TableProfile) Validate() error {
	if t[0] != 1 {
		return fmt.Errorf("cmp: profile ExecRatio(0) = %v, must be 1", t[0])
	}
	for l := Level(1); l < NumLevels; l++ {
		if t[l] <= 0 {
			return fmt.Errorf("cmp: profile ratio at %v is %v, must be positive", l, t[l])
		}
		if t[l] > t[l-1] {
			return fmt.Errorf("cmp: profile ratio increases at %v", l)
		}
	}
	return nil
}

// Alpha returns the latency-reduction ratio α_lh of Equation 3: the factor by
// which execution time shrinks when moving a service from level from to level
// to under profile p. Values below 1 mean speedup.
func Alpha(p SpeedupProfile, from, to Level) float64 {
	return p.ExecRatio(to) / p.ExecRatio(from)
}

// Speedup returns the speedup factor (≥ 1 for an upward move) of moving from
// level from to level to.
func Speedup(p SpeedupProfile, from, to Level) float64 {
	return p.ExecRatio(from) / p.ExecRatio(to)
}
