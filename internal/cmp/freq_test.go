package cmp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLevelGHz(t *testing.T) {
	cases := []struct {
		l Level
		f GHz
	}{
		{0, 1.2},
		{MidLevel, 1.8},
		{MaxLevel, 2.4},
		{1, 1.3},
	}
	for _, c := range cases {
		if got := c.l.GHz(); math.Abs(float64(got-c.f)) > 1e-9 {
			t.Errorf("Level(%d).GHz() = %v, want %v", c.l, got, c.f)
		}
	}
}

func TestLevelValid(t *testing.T) {
	if Level(-1).Valid() {
		t.Error("Level(-1) reported valid")
	}
	if Level(NumLevels).Valid() {
		t.Error("Level(NumLevels) reported valid")
	}
	for l := Level(0); l < NumLevels; l++ {
		if !l.Valid() {
			t.Errorf("Level(%d) reported invalid", l)
		}
	}
}

func TestLevelString(t *testing.T) {
	if got := MidLevel.String(); got != "1.8GHz" {
		t.Errorf("MidLevel.String() = %q, want 1.8GHz", got)
	}
	if got := Level(-3).String(); got != "Level(-3)" {
		t.Errorf("invalid level String() = %q", got)
	}
}

func TestLevelOfRoundTrip(t *testing.T) {
	for l := Level(0); l < NumLevels; l++ {
		if got := LevelOf(l.GHz()); got != l {
			t.Errorf("LevelOf(%v) = %v, want %v", l.GHz(), got, l)
		}
	}
}

func TestLevelOfClamping(t *testing.T) {
	if got := LevelOf(0.8); got != 0 {
		t.Errorf("LevelOf(0.8) = %v, want 0", got)
	}
	if got := LevelOf(3.6); got != MaxLevel {
		t.Errorf("LevelOf(3.6) = %v, want MaxLevel", got)
	}
	// Mid-step values round down to the nearest level at or below.
	if got := LevelOf(1.84); got != MidLevel {
		t.Errorf("LevelOf(1.84) = %v, want %v", got, MidLevel)
	}
}

func TestLevelsLadder(t *testing.T) {
	ls := Levels()
	if len(ls) != NumLevels {
		t.Fatalf("Levels() returned %d entries, want %d", len(ls), NumLevels)
	}
	for i, l := range ls {
		if int(l) != i {
			t.Errorf("Levels()[%d] = %v", i, l)
		}
	}
}

func TestGHzPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Level(99).GHz() did not panic")
		}
	}()
	_ = Level(99).GHz()
}

// Property: LevelOf is monotone nondecreasing in frequency.
func TestPropertyLevelOfMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		fa := GHz(math.Abs(math.Mod(a, 4)))
		fb := GHz(math.Abs(math.Mod(b, 4)))
		if fa > fb {
			fa, fb = fb, fa
		}
		return LevelOf(fa) <= LevelOf(fb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
