package cmp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultModelCalibration(t *testing.T) {
	m := DefaultModel()
	// Calibration point: P(1.8 GHz) = 4.52 W, so 3 stage instances at the
	// medial frequency exactly fill the paper's 13.56 W budget.
	if p := m.Power(MidLevel); math.Abs(float64(p)-4.52) > 1e-9 {
		t.Errorf("P(1.8GHz) = %v, want 4.52", p)
	}
	if got := 3 * m.Power(MidLevel); math.Abs(float64(got)-13.56) > 1e-9 {
		t.Errorf("3×P(1.8GHz) = %v, want 13.56", got)
	}
}

func TestDefaultModelMonotoneIncreasing(t *testing.T) {
	m := DefaultModel()
	for l := Level(1); l < NumLevels; l++ {
		if m.Power(l) <= m.Power(l-1) {
			t.Errorf("P(%v)=%v not greater than P(%v)=%v", l, m.Power(l), l-1, m.Power(l-1))
		}
	}
}

func TestDefaultModelConvex(t *testing.T) {
	// Dynamic power ∝ V²f makes the marginal cost of a frequency step grow
	// with frequency; the recycling algorithms exploit this shape.
	m := DefaultModel()
	prev := m.Power(1) - m.Power(0)
	for l := Level(2); l < NumLevels; l++ {
		step := m.Power(l) - m.Power(l-1)
		if step < prev-1e-9 {
			t.Errorf("marginal cost shrank at %v: %v < %v", l, step, prev)
		}
		prev = step
	}
}

func TestMinMaxPower(t *testing.T) {
	m := DefaultModel()
	if m.MinPower() != m.Power(0) {
		t.Error("MinPower mismatch")
	}
	if m.MaxPower() != m.Power(MaxLevel) {
		t.Error("MaxPower mismatch")
	}
}

func TestTableModelValidate(t *testing.T) {
	var tm TableModel
	for l := Level(0); l < NumLevels; l++ {
		tm[l] = Watts(1 + float64(l))
	}
	if err := tm.Validate(); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	bad := tm
	bad[4] = bad[3] // not increasing
	if err := bad.Validate(); err == nil {
		t.Fatal("non-increasing table accepted")
	}
	bad2 := tm
	bad2[0] = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("non-positive table accepted")
	}
	if tm.Power(2) != 3 {
		t.Errorf("table Power(2) = %v, want 3", tm.Power(2))
	}
	if tm.MinPower() != 1 || tm.MaxPower() != Watts(NumLevels) {
		t.Error("table Min/MaxPower mismatch")
	}
}

func TestHighestAffordable(t *testing.T) {
	m := DefaultModel()
	// Exactly the power of 1.8 GHz affords 1.8 GHz.
	l, ok := HighestAffordable(m, m.Power(MidLevel))
	if !ok || l != MidLevel {
		t.Errorf("HighestAffordable(P(1.8)) = %v,%v; want %v,true", l, ok, MidLevel)
	}
	// A hair less affords one level lower.
	l, ok = HighestAffordable(m, m.Power(MidLevel)-0.001)
	if !ok || l != MidLevel-1 {
		t.Errorf("HighestAffordable(P(1.8)-ε) = %v,%v; want %v,true", l, ok, MidLevel-1)
	}
	// Less than the minimum power affords nothing.
	if _, ok := HighestAffordable(m, m.MinPower()-0.01); ok {
		t.Error("HighestAffordable below MinPower returned ok")
	}
	// A huge budget affords the maximum.
	l, ok = HighestAffordable(m, 1000)
	if !ok || l != MaxLevel {
		t.Errorf("HighestAffordable(1000) = %v,%v; want MaxLevel,true", l, ok)
	}
}

func TestBoostCostSigns(t *testing.T) {
	m := DefaultModel()
	if BoostCost(m, 0, MaxLevel) <= 0 {
		t.Error("raising cost not positive")
	}
	if BoostCost(m, MaxLevel, 0) >= 0 {
		t.Error("lowering cost not negative")
	}
	if BoostCost(m, 5, 5) != 0 {
		t.Error("no-op cost not zero")
	}
}

// Property: HighestAffordable(m, b) returns the greatest level with
// P(level) ≤ b, for arbitrary budgets.
func TestPropertyHighestAffordableIsMaximal(t *testing.T) {
	m := DefaultModel()
	f := func(raw float64) bool {
		b := Watts(math.Abs(math.Mod(raw, 20)))
		l, ok := HighestAffordable(m, b)
		if !ok {
			return m.Power(0) > b
		}
		if m.Power(l) > b+1e-9 {
			return false
		}
		if l < MaxLevel && m.Power(l+1) <= b+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
