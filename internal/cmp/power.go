package cmp

import (
	"fmt"
	"math"
)

// Watts expresses power in watts.
type Watts float64

// PowerModel maps a core frequency level to the power the core draws while a
// service instance runs on it. The paper cannot measure core-level power on
// its platform and instead uses the analytic model proposed by Adrenaline
// [22]; implementations here play the same role.
type PowerModel interface {
	// Power returns the power drawn by one core at the given level.
	Power(l Level) Watts
	// MaxPower returns the power at the highest level (convenience).
	MaxPower() Watts
	// MinPower returns the power at the lowest level (convenience).
	MinPower() Watts
}

// HaswellModel is the default analytic per-core power model:
//
//	P(f) = static + k·V(f)²·f   with V(f) rising linearly over the ladder,
//
// which reduces to the familiar static + dynamic ∝ V²f form. The constants
// are calibrated so that a core at 1.8 GHz draws 4.52 W — making the paper's
// Table 2 power budget of 13.56 W exactly "one service instance at the middle
// of the frequency scale per stage" for a three-stage application.
type HaswellModel struct {
	Static Watts   // frequency-independent per-core power
	K      float64 // dynamic coefficient (W per V²·GHz)
	V0     float64 // supply voltage at MinGHz (volts)
	VSlope float64 // voltage increase per GHz above MinGHz (volts/GHz)
}

// DefaultModel returns the calibrated Haswell-like model used throughout the
// experiments.
func DefaultModel() *HaswellModel {
	// Dynamic power dominates (V²f with a steep voltage ramp), so a core at
	// the ladder floor draws well under half of a mid-frequency core — the
	// property that makes recycling two donors to the floor pay for one new
	// mid-frequency instance, which the paper's instance boosting relies on.
	m := &HaswellModel{Static: 0.4, V0: 0.6, VSlope: 0.35}
	// Solve K from the calibration point P(1.8 GHz) = 4.52 W.
	f := 1.8
	v := m.V0 + m.VSlope*(f-float64(MinGHz))
	m.K = (4.52 - float64(m.Static)) / (v * v * f)
	return m
}

// Power implements PowerModel.
func (m *HaswellModel) Power(l Level) Watts {
	f := float64(l.GHz())
	v := m.V0 + m.VSlope*(f-float64(MinGHz))
	return m.Static + Watts(m.K*v*v*f)
}

// MaxPower implements PowerModel.
func (m *HaswellModel) MaxPower() Watts { return m.Power(MaxLevel) }

// MinPower implements PowerModel.
func (m *HaswellModel) MinPower() Watts { return m.Power(0) }

// TableModel is a PowerModel backed by an explicit per-level table, for
// plugging in measured numbers.
type TableModel [NumLevels]Watts

// Power implements PowerModel.
func (t *TableModel) Power(l Level) Watts {
	if !l.Valid() {
		panic(fmt.Sprintf("cmp: invalid frequency level %d", int(l)))
	}
	return t[l]
}

// MaxPower implements PowerModel.
func (t *TableModel) MaxPower() Watts { return t[MaxLevel] }

// MinPower implements PowerModel.
func (t *TableModel) MinPower() Watts { return t[0] }

// Validate checks that the table is positive and strictly increasing, which
// every recycling algorithm in the controller relies on.
func (t *TableModel) Validate() error {
	for l := Level(0); l < NumLevels; l++ {
		if t[l] <= 0 {
			return fmt.Errorf("cmp: table power at %v is %v, must be positive", l, t[l])
		}
		if l > 0 && t[l] <= t[l-1] {
			return fmt.Errorf("cmp: table power not increasing at %v", l)
		}
	}
	return nil
}

// HighestAffordable returns the highest level whose power does not exceed
// budget, and false when even the lowest level exceeds it.
func HighestAffordable(m PowerModel, budget Watts) (Level, bool) {
	if m.Power(0) > budget+1e-9 {
		return 0, false
	}
	lo, hi := Level(0), MaxLevel
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if m.Power(mid) <= budget+1e-9 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, true
}

// BoostCost returns the additional power needed to move a core from level
// from to level to. Negative when stepping down.
func BoostCost(m PowerModel, from, to Level) Watts {
	return m.Power(to) - m.Power(from)
}

// ApproxEqual reports whether two power values are equal within a nanowatt
// tolerance, absorbing float accumulation error in budget bookkeeping.
func ApproxEqual(a, b Watts) bool { return math.Abs(float64(a-b)) < 1e-9 }
