package cmp

import "fmt"

// GHz expresses a core frequency in gigahertz.
type GHz float64

// The frequency ladder of the simulated Haswell part (§8.1 of the paper).
const (
	MinGHz  GHz = 1.2
	MaxGHz  GHz = 2.4
	StepGHz GHz = 0.1
)

// Level indexes the discrete frequency ladder: level 0 is MinGHz, the highest
// level is MaxGHz.
type Level int

// NumLevels is the number of discrete frequency levels (1.2 .. 2.4 by 0.1).
const NumLevels = 13

// MaxLevel is the highest valid frequency level.
const MaxLevel Level = NumLevels - 1

// MidLevel is the level of the 1.8 GHz "medial frequency" the paper uses for
// the stage-agnostic baseline (Table 2).
const MidLevel Level = 6

// Valid reports whether l is within the ladder.
func (l Level) Valid() bool { return l >= 0 && l < NumLevels }

// GHz returns the frequency of the level.
func (l Level) GHz() GHz {
	if !l.Valid() {
		panic(fmt.Sprintf("cmp: invalid frequency level %d", int(l)))
	}
	// Computed from integers so each level maps to the nearest double of its
	// decimal frequency (1.2 + 0.1·l accumulates float error).
	return GHz(float64(12+int(l)) / 10)
}

// String formats the level as its frequency, e.g. "1.8GHz".
func (l Level) String() string {
	if !l.Valid() {
		return fmt.Sprintf("Level(%d)", int(l))
	}
	return fmt.Sprintf("%.1fGHz", float64(l.GHz()))
}

// LevelOf returns the highest level whose frequency does not exceed f,
// clamping to the ladder bounds.
func LevelOf(f GHz) Level {
	if f <= MinGHz {
		return 0
	}
	if f >= MaxGHz {
		return MaxLevel
	}
	// Add a half step so 1.7999999 maps to 1.8.
	return Level((f - MinGHz + StepGHz/2) / StepGHz)
}

// Levels returns the full ladder, lowest first.
func Levels() []Level {
	out := make([]Level, NumLevels)
	for i := range out {
		out[i] = Level(i)
	}
	return out
}
