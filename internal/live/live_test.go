package live

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/query"
	"powerchief/internal/stage"
)

// fastScale compresses virtual time 100×: 1 virtual second = 10ms wall.
// Stronger compression lets time.Sleep granularity dominate the virtual
// clock.
const fastScale = 0.01

var flat = cmp.NewRooflineProfile(1)

func twoStageCluster(t *testing.T, instances int) *Cluster {
	t.Helper()
	c, err := NewCluster(Options{Budget: 200, TimeScale: fastScale}, []StageSpec{
		{Name: "A", Kind: stage.Pipeline, Profile: flat, Instances: instances, Level: cmp.MidLevel},
		{Name: "B", Kind: stage.Pipeline, Profile: flat, Instances: 1, Level: cmp.MidLevel},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// workFor builds a work matrix for the two-stage cluster.
func workFor(a, b time.Duration) [][]time.Duration {
	return [][]time.Duration{{a}, {b}}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestQueryFlowsThroughPipeline(t *testing.T) {
	c := twoStageCluster(t, 1)
	var done atomic.Uint64
	var mu sync.Mutex
	var last *query.Query
	c.OnComplete(func(q *query.Query) {
		mu.Lock()
		last = q
		mu.Unlock()
		done.Add(1)
	})
	q := query.New(1, c.Now(), workFor(50*time.Millisecond, 30*time.Millisecond))
	if err := c.Submit(q); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return done.Load() == 1 })
	mu.Lock()
	defer mu.Unlock()
	if last != q || !q.Completed() {
		t.Fatal("query did not complete")
	}
	if len(q.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(q.Records))
	}
	for _, r := range q.Records {
		if err := r.Validate(); err != nil {
			t.Error(err)
		}
	}
	// Virtual latency should be roughly the service demand (80ms) — allow
	// generous scheduler slack since wall time is compressed 1000×.
	if lat := q.Latency(); lat < 80*time.Millisecond || lat > 3*time.Second {
		t.Errorf("latency = %v, want ≈80ms (virtual)", lat)
	}
}

func TestManyQueriesAllComplete(t *testing.T) {
	c := twoStageCluster(t, 2)
	var done atomic.Uint64
	c.OnComplete(func(q *query.Query) { done.Add(1) })
	const n = 200
	for i := 0; i < n; i++ {
		q := query.New(query.ID(i), c.Now(), workFor(20*time.Millisecond, 10*time.Millisecond))
		if err := c.Submit(q); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return done.Load() == n })
	if c.Completed() != n || c.InFlight() != 0 {
		t.Errorf("completed=%d inflight=%d", c.Completed(), c.InFlight())
	}
}

func TestLiveCloneAndWithdraw(t *testing.T) {
	c := twoStageCluster(t, 1)
	st := c.StageByName("A")
	ins := st.Instances()
	if len(ins) != 1 {
		t.Fatal("expected one instance")
	}
	clone, err := st.Clone(ins[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Instances()) != 2 {
		t.Fatal("clone not active")
	}
	if clone.Level() != ins[0].Level() {
		t.Error("clone level mismatch")
	}
	if err := st.Withdraw(clone, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return len(st.Instances()) == 1 })
	// The last instance cannot be withdrawn.
	if err := st.Withdraw(st.Instances()[0], nil); err == nil {
		t.Error("withdrew the last active instance")
	}
}

func TestLiveSetLevelBudget(t *testing.T) {
	m := cmp.DefaultModel()
	c, err := NewCluster(Options{Budget: m.Power(cmp.MidLevel), TimeScale: fastScale}, []StageSpec{
		{Name: "A", Kind: stage.Pipeline, Profile: flat, Instances: 1, Level: cmp.MidLevel},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	in := c.StageByName("A").Instances()[0]
	if err := in.SetLevel(cmp.MaxLevel); err == nil {
		t.Error("budget-exceeding DVFS accepted")
	}
	if err := in.SetLevel(0); err != nil {
		t.Errorf("lowering failed: %v", err)
	}
	if in.Level() != 0 {
		t.Error("level not applied")
	}
}

func TestLiveFanOutJoin(t *testing.T) {
	c, err := NewCluster(Options{Budget: 200, TimeScale: fastScale}, []StageSpec{
		{Name: "leaf", Kind: stage.FanOut, Profile: flat, Instances: 3, Level: cmp.MidLevel},
		{Name: "agg", Kind: stage.Pipeline, Profile: flat, Instances: 1, Level: cmp.MidLevel},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var done atomic.Uint64
	c.OnComplete(func(q *query.Query) { done.Add(1) })
	q := query.New(1, c.Now(), [][]time.Duration{
		{10 * time.Millisecond, 60 * time.Millisecond, 20 * time.Millisecond},
		{5 * time.Millisecond},
	})
	if err := c.Submit(q); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return done.Load() == 1 })
	if len(q.Records) != 4 {
		t.Errorf("records = %d, want 4 (3 branches + agg)", len(q.Records))
	}
	// Fan-out stages refuse scaling.
	leaf := c.StageByName("leaf")
	if _, err := leaf.Clone(leaf.Instances()[0]); err == nil {
		t.Error("cloned a fan-out instance")
	}
}

func TestControllerDrivesPolicy(t *testing.T) {
	c := twoStageCluster(t, 1)
	agg := core.NewAggregator(25*time.Second, c.Now)
	c.OnComplete(agg.Ingest)

	cfg := core.DefaultConfig()
	cfg.WithdrawInterval = 0
	policy := core.NewPowerChief(cfg)
	ctl := StartController(c, agg, policy, 5*time.Second)
	defer ctl.Stop()

	// Overload stage A so the controller has a bottleneck to boost.
	var done atomic.Uint64
	c.OnComplete(func(q *query.Query) { done.Add(1) })
	for i := 0; i < 400; i++ {
		q := query.New(query.ID(i), c.Now(), workFor(120*time.Millisecond, 5*time.Millisecond))
		if err := c.Submit(q); err != nil {
			t.Fatal(err)
		}
		time.Sleep(500 * time.Microsecond) // ≈50 virtual ms between arrivals
	}
	waitFor(t, 20*time.Second, func() bool { return done.Load() == 400 })
	acted := false
	for _, out := range ctl.Outcomes() {
		if out.Kind != core.BoostNone {
			acted = true
		}
	}
	if !acted {
		t.Error("controller never boosted under overload")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(Options{Budget: 0}, nil); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := NewCluster(Options{Budget: 10}, nil); err == nil {
		t.Error("no stages accepted")
	}
	if _, err := NewCluster(Options{Budget: 10, TimeScale: -1}, []StageSpec{{}}); err == nil {
		t.Error("negative time scale accepted")
	}
	if _, err := NewCluster(Options{Budget: 10}, []StageSpec{{Name: "A"}}); err == nil {
		t.Error("nil profile accepted")
	}
	if _, err := NewCluster(Options{Budget: 200}, []StageSpec{
		{Name: "A", Kind: stage.Pipeline, Profile: flat, Instances: 1, Level: cmp.MidLevel},
		{Name: "A", Kind: stage.Pipeline, Profile: flat, Instances: 1, Level: cmp.MidLevel},
	}); err == nil {
		t.Error("duplicate stage names accepted")
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	c := twoStageCluster(t, 1)
	c.Close()
	if err := c.Submit(query.New(1, 0, workFor(time.Millisecond, time.Millisecond))); err == nil {
		t.Error("submit after close succeeded")
	}
	c.Close() // idempotent
}

func TestSubmitShapeMismatch(t *testing.T) {
	c := twoStageCluster(t, 1)
	if err := c.Submit(query.New(1, 0, [][]time.Duration{{time.Millisecond}})); err == nil {
		t.Error("work shape mismatch accepted")
	}
}
