package live

import (
	"sync/atomic"
	"testing"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/query"
)

func TestWithdrawnInstanceActuallyRetires(t *testing.T) {
	c := twoStageCluster(t, 2)
	st := c.StageByName("A")
	ins := st.Instances()
	victim := ins[1].(*Instance)
	if victim.StageName() != "A" {
		t.Errorf("StageName = %q", victim.StageName())
	}
	if err := st.Withdraw(victim, ins[0]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return victim.Retired() })
	// The retired instance returned its core.
	if c.FreeCores() != 16-2 {
		t.Errorf("free cores = %d after retirement, want 14", c.FreeCores())
	}
	if victim.Served() != 0 {
		t.Errorf("idle victim served %d", victim.Served())
	}
}

func TestWithdrawBusyLiveInstanceDrains(t *testing.T) {
	c := twoStageCluster(t, 2)
	st := c.StageByName("A")
	var done atomic.Uint64
	c.OnComplete(func(q *query.Query) { done.Add(1) })
	// Occupy both instances with long work plus a queued item each.
	for i := 0; i < 4; i++ {
		if err := c.Submit(query.New(query.ID(i), c.Now(), workFor(200*time.Millisecond, time.Millisecond))); err != nil {
			t.Fatal(err)
		}
	}
	ins := st.Instances()
	victim := ins[0].(*Instance)
	if err := st.Withdraw(victim, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool { return victim.Retired() })
	waitFor(t, 10*time.Second, func() bool { return done.Load() == 4 })
	if c.Completed() != 4 {
		t.Errorf("completed = %d, want 4 (no query lost in the drain)", c.Completed())
	}
}

func TestLiveAccessorsAndUtilization(t *testing.T) {
	c := twoStageCluster(t, 1)
	if c.Budget() != 200 {
		t.Errorf("Budget = %v", c.Budget())
	}
	wantDraw := 2 * cmp.DefaultModel().Power(cmp.MidLevel)
	if !cmp.ApproxEqual(c.Draw(), wantDraw) {
		t.Errorf("Draw = %v, want %v", c.Draw(), wantDraw)
	}
	if c.Submitted() != 0 {
		t.Errorf("Submitted = %d", c.Submitted())
	}
	in := c.StageByName("A").Instances()[0].(*Instance)
	var done atomic.Uint64
	c.OnComplete(func(q *query.Query) { done.Add(1) })
	if err := c.Submit(query.New(1, c.Now(), workFor(100*time.Millisecond, time.Millisecond))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return done.Load() == 1 })
	if in.Served() != 1 {
		t.Errorf("Served = %d", in.Served())
	}
	if u := in.Utilization(); u <= 0 || u > 1 {
		t.Errorf("Utilization = %v", u)
	}
	in.ResetUtilizationEpoch()
	// A fresh epoch with no work reports (near) zero.
	if u := in.Utilization(); u > 0.5 {
		t.Errorf("Utilization after reset = %v", u)
	}
	if c.StageByName("A").Name() != "A" {
		t.Error("stage Name accessor")
	}
	if c.StageByName("missing") != nil {
		t.Error("unknown stage lookup returned non-nil")
	}
}

func TestLiveControllerValidation(t *testing.T) {
	c := twoStageCluster(t, 1)
	agg := core.NewAggregator(25*time.Second, c.Now)
	policy := core.Static{}
	for name, fn := range map[string]func(){
		"nil cluster":   func() { StartController(nil, agg, policy, time.Second) },
		"nil policy":    func() { StartController(c, agg, nil, time.Second) },
		"zero interval": func() { StartController(c, agg, policy, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
	// Stop is idempotent.
	ctl := StartController(c, agg, policy, time.Second)
	ctl.Stop()
	ctl.Stop()
	if len(ctl.Outcomes()) != 0 {
		t.Error("static policy recorded outcomes before any tick")
	}
}
