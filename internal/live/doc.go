// Package live is the real-time engine of the framework: the same
// multi-stage service model as the discrete-event simulator, but driven by
// goroutines in wall-clock time. Each service instance is a worker goroutine
// pinned to a modelled core; query "work" is executed as a sleep scaled by
// the core's DVFS level and the cluster's time scale, so a full experiment
// can run in compressed real time. The identical Command Center policies
// (internal/core) drive the cluster through the same interfaces they use on
// the simulator.
//
// The repro note in DESIGN.md applies here: Go's GC and scheduler add jitter
// that makes wall-clock runs non-deterministic — the live engine exists to
// demonstrate the framework operating as a real runtime (as in the paper's
// prototype), while the DES produces the reproducible figures.
//
// Entry points: NewCluster builds the running system from StageSpec values
// (Options.TimeScale compresses virtual work into wall time); Cluster.Submit
// injects a query and OnComplete delivers its latency records;
// StartController runs a core.Policy against the cluster on a fixed
// interval. internal/loadgen drives a Cluster as a benchmark target.
package live
