package live

import (
	"errors"
	"testing"

	"powerchief/internal/cmp"
	"powerchief/internal/stage"
)

// TestClusterSetBudgetShedsLevels covers the fleet actuation surface on the
// live cluster: lowering the budget below the draw sheds the highest levels
// first, the chip is never left over-budget, and a budget below the minimum
// possible draw is rejected without mutating anything it cannot honour.
func TestClusterSetBudgetShedsLevels(t *testing.T) {
	model := cmp.DefaultModel()
	c, err := NewCluster(Options{Budget: 200, TimeScale: fastScale}, []StageSpec{
		{Name: "A", Kind: stage.Pipeline, Profile: flat, Instances: 1, Level: cmp.MaxLevel},
		{Name: "B", Kind: stage.Pipeline, Profile: flat, Instances: 1, Level: cmp.MidLevel},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	// Raising the budget is a plain re-grant.
	if err := c.SetBudget(250); err != nil {
		t.Fatalf("raising budget: %v", err)
	}
	if got := c.Budget(); got != 250 {
		t.Fatalf("Budget() = %v, want 250", got)
	}

	// Lowering below the current draw sheds levels until the draw fits.
	draw := c.Draw()
	target := draw - model.MaxPower()/2
	if err := c.SetBudget(target); err != nil {
		t.Fatalf("lowering budget to %v: %v", target, err)
	}
	if got := c.Draw(); got > target+1e-9 {
		t.Fatalf("draw %v over new budget %v", got, target)
	}
	if got := c.Budget(); got != target {
		t.Fatalf("Budget() = %v, want %v", got, target)
	}

	// A budget below two floor-level cores cannot be honoured.
	tooLow := model.MinPower()
	if err := c.SetBudget(tooLow); !errors.Is(err, cmp.ErrBudgetExceeded) {
		t.Fatalf("SetBudget(%v) = %v, want ErrBudgetExceeded", tooLow, err)
	}
	if err := c.SetBudget(-1); err == nil {
		t.Fatal("negative budget accepted")
	}
	// The failed calls shed what they could but never pushed the draw over
	// the last honoured budget.
	if got := c.Draw(); got > c.Budget()+1e-9 {
		t.Fatalf("draw %v over budget %v after rejected SetBudget", got, c.Budget())
	}
}
