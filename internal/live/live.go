package live

import (
	"fmt"
	"sync"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/query"
	"powerchief/internal/stage"
	"powerchief/internal/stats"
)

// Options configures a cluster.
type Options struct {
	// Cores is the chip size (default 16).
	Cores int
	// Model is the per-core power model (default cmp.DefaultModel()).
	Model cmp.PowerModel
	// Budget is the power budget (required).
	Budget cmp.Watts
	// TimeScale maps virtual duration to wall duration: wall = virtual ×
	// TimeScale. 0.01 runs a 900-virtual-second experiment in 9 wall
	// seconds. Default 1.0.
	TimeScale float64
}

// StageSpec describes one live stage.
type StageSpec struct {
	Name      string
	Kind      stage.Kind
	Profile   cmp.SpeedupProfile
	Instances int
	Level     cmp.Level
}

// Cluster is a running live deployment. It implements core.System, so any
// control policy can drive it.
type Cluster struct {
	opts  Options
	start time.Time

	mu     sync.Mutex
	chip   *cmp.Chip
	stages []*Stage
	closed bool

	submitted uint64
	completed uint64

	onComplete []func(*query.Query)

	wg sync.WaitGroup
}

// NewCluster builds and starts the stages.
func NewCluster(opts Options, specs []StageSpec) (*Cluster, error) {
	if opts.Cores == 0 {
		opts.Cores = 16
	}
	if opts.Model == nil {
		opts.Model = cmp.DefaultModel()
	}
	if opts.Budget <= 0 {
		return nil, fmt.Errorf("live: cluster needs a positive power budget")
	}
	if opts.TimeScale == 0 {
		opts.TimeScale = 1
	}
	if opts.TimeScale < 0 {
		return nil, fmt.Errorf("live: negative time scale")
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("live: cluster needs at least one stage")
	}
	c := &Cluster{
		opts:  opts,
		start: time.Now(),
		chip:  cmp.NewChip(opts.Cores, opts.Model, opts.Budget),
	}
	names := make(map[string]bool)
	for i, spec := range specs {
		if spec.Name == "" || spec.Profile == nil || spec.Instances < 1 || !spec.Level.Valid() {
			return nil, fmt.Errorf("live: invalid spec for stage %d", i)
		}
		if names[spec.Name] {
			return nil, fmt.Errorf("live: duplicate stage name %q", spec.Name)
		}
		names[spec.Name] = true
		st := &Stage{cluster: c, index: i, spec: spec}
		c.stages = append(c.stages, st)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, st := range c.stages {
		for j := 0; j < st.spec.Instances; j++ {
			if _, err := st.launchLocked(st.spec.Level); err != nil {
				return nil, fmt.Errorf("live: stage %s instance %d: %w", st.spec.Name, j, err)
			}
		}
	}
	return c, nil
}

// Now returns the virtual time since cluster start.
func (c *Cluster) Now() time.Duration {
	return time.Duration(float64(time.Since(c.start)) / c.opts.TimeScale)
}

// wall converts a virtual duration to wall time.
func (c *Cluster) wall(d time.Duration) time.Duration {
	return time.Duration(float64(d) * c.opts.TimeScale)
}

// PowerModel implements core.System.
func (c *Cluster) PowerModel() cmp.PowerModel { return c.opts.Model }

// Budget implements core.System.
func (c *Cluster) Budget() cmp.Watts { return c.chip.Budget() }

// SetBudget re-grants the cluster's local power budget — the actuation a
// fleet coordinator's SetBudgetAction lands on. A lowered budget sheds load
// first: the highest-level instances are stepped down (the same
// richest-donor order the re-admission path uses) until the draw fits, then
// the chip budget is set, so the call never leaves the chip over-budget.
func (c *Cluster) SetBudget(w cmp.Watts) error {
	if w < 0 {
		return fmt.Errorf("live: negative budget %.2fW", float64(w))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.chip.Draw() > w+1e-9 {
		var best *Instance
		for _, st := range c.stages {
			for _, in := range st.instances {
				if in.retired {
					continue
				}
				if best == nil || in.level > best.level {
					best = in
				}
			}
		}
		if best == nil || best.level == 0 {
			return fmt.Errorf("live: budget %.2fW below minimum draw %.2fW: %w",
				float64(w), float64(c.chip.Draw()), cmp.ErrBudgetExceeded)
		}
		if err := c.chip.SetLevel(best.core, best.level-1); err != nil {
			return err
		}
		best.level--
	}
	return c.chip.SetBudget(w)
}

// Draw implements core.System.
func (c *Cluster) Draw() cmp.Watts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.chip.Draw()
}

// Headroom implements core.System.
func (c *Cluster) Headroom() cmp.Watts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.chip.Headroom()
}

// FreeCores implements core.System.
func (c *Cluster) FreeCores() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.chip.Free()
}

// Quarantined implements core.System. The in-process cluster cannot lose a
// stage (instances are goroutines in this process); nothing is quarantined.
func (c *Cluster) Quarantined() []core.StageControl { return nil }

// Stages implements core.System.
func (c *Cluster) Stages() []core.StageControl {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]core.StageControl, len(c.stages))
	for i, st := range c.stages {
		out[i] = st
	}
	return out
}

// StageByName returns a live stage, or nil.
func (c *Cluster) StageByName(name string) *Stage {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, st := range c.stages {
		if st.spec.Name == name {
			return st
		}
	}
	return nil
}

// OnComplete registers a completion callback. Callbacks run outside the
// cluster lock on the completing instance's goroutine.
func (c *Cluster) OnComplete(fn func(*query.Query)) {
	if fn == nil {
		panic("live: nil completion callback")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onComplete = append(c.onComplete, fn)
}

// Submit injects a query into the first stage.
func (c *Cluster) Submit(q *query.Query) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("live: cluster closed")
	}
	if len(q.Work) != len(c.stages) {
		c.mu.Unlock()
		return fmt.Errorf("live: query %d carries work for %d stages, pipeline has %d", q.ID, len(q.Work), len(c.stages))
	}
	c.submitted++
	c.stages[0].admitLocked(q)
	c.mu.Unlock()
	return nil
}

// Submitted returns the number of injected queries.
func (c *Cluster) Submitted() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.submitted
}

// Completed returns the number of finished queries.
func (c *Cluster) Completed() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.completed
}

// InFlight returns queries currently inside the pipeline.
func (c *Cluster) InFlight() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.submitted - c.completed
}

// advanceLocked moves a finished query onward; caller holds c.mu. Returns
// callbacks to run after the lock is released (with the query) when the
// query completed the pipeline.
func (c *Cluster) advanceLocked(q *query.Query, idx int) []func(*query.Query) {
	if idx+1 < len(c.stages) {
		c.stages[idx+1].admitLocked(q)
		return nil
	}
	q.Done = c.Now()
	c.completed++
	cbs := make([]func(*query.Query), len(c.onComplete))
	copy(cbs, c.onComplete)
	return cbs
}

// Close stops all instances and waits for their goroutines. In-flight
// queries are abandoned.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for _, st := range c.stages {
		for _, in := range st.instances {
			in.stopLocked()
		}
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// Interface conformance.
var (
	_ core.System       = (*Cluster)(nil)
	_ core.StageControl = (*Stage)(nil)
	_ core.Instance     = (*Instance)(nil)
	_                   = stats.NewBusyTracker // keep the import tied to its use in instance.go
)
