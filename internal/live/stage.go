package live

import (
	"fmt"

	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/query"
	"powerchief/internal/stage"
)

// Stage is one live processing stage: a pool of worker instances. It
// implements core.StageControl. All mutable state is guarded by the
// cluster's mutex.
type Stage struct {
	cluster *Cluster
	index   int
	spec    StageSpec

	instances []*Instance
	seq       int
}

// Name implements core.StageControl.
func (st *Stage) Name() string { return st.spec.Name }

// CanScale implements core.StageControl.
func (st *Stage) CanScale() bool { return st.spec.Kind == stage.Pipeline }

// Profile implements core.StageControl.
func (st *Stage) Profile() cmp.SpeedupProfile { return st.spec.Profile }

// Instances implements core.StageControl: live, non-draining instances.
func (st *Stage) Instances() []core.Instance {
	st.cluster.mu.Lock()
	defer st.cluster.mu.Unlock()
	return st.activeLocked()
}

func (st *Stage) activeLocked() []core.Instance {
	var out []core.Instance
	for _, in := range st.instances {
		if !in.draining && !in.retired {
			out = append(out, in)
		}
	}
	return out
}

// launchLocked claims a core and starts a worker; caller holds cluster.mu.
func (st *Stage) launchLocked(level cmp.Level) (*Instance, error) {
	coreID, err := st.cluster.chip.Allocate(level)
	if err != nil {
		return nil, err
	}
	st.seq++
	in := newInstance(st, fmt.Sprintf("%s_%d", st.spec.Name, st.seq), len(st.instances), coreID, level)
	st.instances = append(st.instances, in)
	st.cluster.wg.Add(1)
	go in.run()
	return in, nil
}

// Clone implements core.StageControl: instance boosting with work stealing.
func (st *Stage) Clone(bottleneck core.Instance) (core.Instance, error) {
	src, ok := bottleneck.(*Instance)
	if !ok {
		return nil, fmt.Errorf("live: clone target %s is not a live instance", bottleneck.Name())
	}
	st.cluster.mu.Lock()
	defer st.cluster.mu.Unlock()
	if st.spec.Kind == stage.FanOut {
		return nil, fmt.Errorf("live: fan-out instances cannot be cloned")
	}
	if src.stage != st || src.retired {
		return nil, fmt.Errorf("live: invalid clone source %s", bottleneck.Name())
	}
	clone, err := st.launchLocked(src.level)
	if err != nil {
		return nil, err
	}
	// Safe under cluster.mu: the fresh worker goroutine blocks on the same
	// lock before it can read boosted.
	clone.boosted = true
	// Steal the tail half of the source queue.
	n := len(src.queue)
	steal := n / 2
	if steal > 0 {
		moved := src.queue[n-steal:]
		src.queue = src.queue[:n-steal]
		clone.queue = append(clone.queue, moved...)
		clone.wake()
	}
	return clone, nil
}

// Withdraw implements core.StageControl: drain and release.
func (st *Stage) Withdraw(victim, target core.Instance) error {
	v, ok := victim.(*Instance)
	if !ok {
		return fmt.Errorf("live: withdraw victim %s is not a live instance", victim.Name())
	}
	st.cluster.mu.Lock()
	defer st.cluster.mu.Unlock()
	if st.spec.Kind == stage.FanOut {
		return fmt.Errorf("live: fan-out instances cannot be withdrawn")
	}
	if v.stage != st || v.draining || v.retired {
		return fmt.Errorf("live: invalid withdraw victim %s", victim.Name())
	}
	others := 0
	for _, o := range st.instances {
		if o != v && !o.draining && !o.retired {
			others++
		}
	}
	if others == 0 {
		return fmt.Errorf("live: cannot withdraw the last active instance of %s", st.spec.Name)
	}
	v.draining = true
	if len(v.queue) > 0 {
		var tgt *Instance
		if t, ok := target.(*Instance); ok && t != v && !t.draining && !t.retired {
			tgt = t
		} else {
			tgt = st.pickLocked()
		}
		tgt.queue = append(tgt.queue, v.queue...)
		v.queue = nil
		tgt.wake()
	}
	v.wake() // so an idle worker notices the drain and retires
	return nil
}

// admitLocked routes a query into the stage; caller holds cluster.mu.
func (st *Stage) admitLocked(q *query.Query) {
	switch st.spec.Kind {
	case stage.Pipeline:
		in := st.pickLocked()
		in.enqueueLocked(q)
	case stage.FanOut:
		active := make([]*Instance, 0, len(st.instances))
		for _, in := range st.instances {
			if !in.draining && !in.retired {
				active = append(active, in)
			}
		}
		q.SetPending(len(active))
		for _, in := range active {
			in.enqueueLocked(q)
		}
	default:
		panic(fmt.Sprintf("live: unknown stage kind %v", st.spec.Kind))
	}
}

// pickLocked is join-shortest-queue over active instances.
func (st *Stage) pickLocked() *Instance {
	var best *Instance
	bestLen := 0
	for _, in := range st.instances {
		if in.draining || in.retired {
			continue
		}
		l := in.backlogLocked()
		if best == nil || l < bestLen {
			best, bestLen = in, l
		}
	}
	if best == nil {
		panic(fmt.Sprintf("live: stage %s has no active instance", st.spec.Name))
	}
	return best
}

// removeLocked detaches a retired instance.
func (st *Stage) removeLocked(in *Instance) {
	for i, o := range st.instances {
		if o == in {
			st.instances = append(st.instances[:i], st.instances[i+1:]...)
			return
		}
	}
}
