package live

import (
	"sync"
	"testing"
	"time"

	"powerchief/internal/core"
)

// TestControllerStopConcurrently is the -race regression test for the old
// controller's double-close panic: Stop raced Stop on a bare channel close.
// The shared control-plane loop must let any number of goroutines stop the
// controller, each returning only once the loop has fully exited.
func TestControllerStopConcurrently(t *testing.T) {
	c := twoStageCluster(t, 1)
	defer c.Close()
	agg := core.NewAggregator(time.Second, c.Now)
	c.OnComplete(agg.Ingest)
	ctl := StartController(c, agg, core.Static{}, 10*time.Millisecond)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctl.Stop()
		}()
	}
	wg.Wait()
	ctl.Stop() // still idempotent after the storm
}
