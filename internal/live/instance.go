package live

import (
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/query"
	"powerchief/internal/stage"
	"powerchief/internal/stats"
)

// queued pairs a query with its virtual enqueue time.
type queued struct {
	q     *query.Query
	enter time.Duration
}

// Instance is a live service instance: a worker goroutine serving its own
// FIFO queue on a modelled core. Mutable state is guarded by the cluster's
// mutex; only the simulated work (sleep) happens outside it.
type Instance struct {
	stage  *Stage
	name   string
	branch int
	core   cmp.CoreID

	// Guarded by cluster.mu.
	level    cmp.Level
	boosted  bool // launched by an instance boost (clone)
	queue    []queued
	serving  bool
	busy     *stats.BusyTracker
	served   uint64
	draining bool
	retired  bool
	stopped  bool

	wakeCh chan struct{}
}

func newInstance(st *Stage, name string, branch int, coreID cmp.CoreID, level cmp.Level) *Instance {
	in := &Instance{
		stage:  st,
		name:   name,
		branch: branch,
		core:   coreID,
		level:  level,
		busy:   stats.NewBusyTracker(),
		wakeCh: make(chan struct{}, 1),
	}
	in.busy.ResetEpoch(st.cluster.Now())
	return in
}

// wake nudges the worker; callers may hold the cluster lock.
func (in *Instance) wake() {
	select {
	case in.wakeCh <- struct{}{}:
	default:
	}
}

// stopLocked asks the worker to exit; caller holds cluster.mu.
func (in *Instance) stopLocked() {
	in.stopped = true
	in.wake()
}

// Name implements core.Instance.
func (in *Instance) Name() string { return in.name }

// StageName implements core.Instance.
func (in *Instance) StageName() string { return in.stage.spec.Name }

// QueueLen implements core.Instance: waiting plus in-service.
func (in *Instance) QueueLen() int {
	in.stage.cluster.mu.Lock()
	defer in.stage.cluster.mu.Unlock()
	return in.backlogLocked()
}

func (in *Instance) backlogLocked() int {
	n := len(in.queue)
	if in.serving {
		n++
	}
	return n
}

// Level implements core.Instance.
func (in *Instance) Level() cmp.Level {
	in.stage.cluster.mu.Lock()
	defer in.stage.cluster.mu.Unlock()
	return in.level
}

// SetLevel implements core.Instance. The new level applies from the next
// query; the in-flight query (if any) finishes at the old speed — the live
// engine cannot re-time a sleep already underway.
func (in *Instance) SetLevel(l cmp.Level) error {
	in.stage.cluster.mu.Lock()
	defer in.stage.cluster.mu.Unlock()
	if in.retired {
		return nil
	}
	if l == in.level {
		return nil
	}
	if err := in.stage.cluster.chip.SetLevel(in.core, l); err != nil {
		return err
	}
	in.level = l
	return nil
}

// Utilization implements core.Instance.
func (in *Instance) Utilization() float64 {
	c := in.stage.cluster
	c.mu.Lock()
	defer c.mu.Unlock()
	return in.busy.Utilization(c.Now())
}

// ResetUtilizationEpoch implements core.Instance.
func (in *Instance) ResetUtilizationEpoch() {
	c := in.stage.cluster
	c.mu.Lock()
	defer c.mu.Unlock()
	in.busy.ResetEpoch(c.Now())
}

// Served returns the number of completed queries.
func (in *Instance) Served() uint64 {
	in.stage.cluster.mu.Lock()
	defer in.stage.cluster.mu.Unlock()
	return in.served
}

// Retired reports whether the instance has been withdrawn.
func (in *Instance) Retired() bool {
	in.stage.cluster.mu.Lock()
	defer in.stage.cluster.mu.Unlock()
	return in.retired
}

// enqueueLocked appends a query; caller holds cluster.mu.
func (in *Instance) enqueueLocked(q *query.Query) {
	in.queue = append(in.queue, queued{q: q, enter: in.stage.cluster.Now()})
	in.wake()
}

// run is the worker loop.
func (in *Instance) run() {
	c := in.stage.cluster
	defer c.wg.Done()
	for {
		c.mu.Lock()
		if in.stopped {
			c.mu.Unlock()
			return
		}
		if len(in.queue) == 0 {
			if in.draining && !in.retired {
				in.retireLocked()
				c.mu.Unlock()
				return
			}
			in.busy.SetIdle(c.Now())
			c.mu.Unlock()
			<-in.wakeCh
			continue
		}
		item := in.queue[0]
		in.queue = in.queue[1:]
		in.serving = true
		serveStart := c.Now()
		in.busy.SetBusy(serveStart)
		level := in.level
		boosted := in.boosted
		c.mu.Unlock()

		// Simulated work: the query's demand at this frequency, compressed
		// by the cluster time scale.
		work := item.q.WorkAt(in.stage.index, in.branch)
		d := time.Duration(float64(work) * in.stage.spec.Profile.ExecRatio(level))
		if wall := c.wall(d); wall > 0 {
			time.Sleep(wall)
		}

		c.mu.Lock()
		now := c.Now()
		in.serving = false
		in.served++
		item.q.Append(query.Record{
			Query:      item.q.ID,
			Stage:      in.stage.spec.Name,
			Instance:   in.name,
			QueueEnter: item.enter,
			ServeStart: serveStart,
			ServeEnd:   now,
			Level:      int(level),
			Boosted:    boosted,
		})
		var cbs []func(*query.Query)
		if in.stage.spec.Kind != stage.FanOut || item.q.BranchDone() {
			cbs = c.advanceLocked(item.q, in.stage.index)
		}
		c.mu.Unlock()
		for _, fn := range cbs {
			fn(item.q)
		}
	}
}

// retireLocked releases the core; caller holds cluster.mu.
func (in *Instance) retireLocked() {
	in.retired = true
	in.busy.SetIdle(in.stage.cluster.Now())
	_ = in.stage.cluster.chip.Release(in.core)
	in.stage.removeLocked(in)
}
