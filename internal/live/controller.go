package live

import (
	"sync"
	"time"

	"powerchief/internal/core"
)

// Controller drives a control policy against a live cluster on a wall-clock
// ticker — the Command Center's control loop of the real-system prototype.
type Controller struct {
	cluster *Cluster
	agg     *core.Aggregator
	policy  core.Policy

	mu       sync.Mutex
	outcomes []core.BoostOutcome

	stop chan struct{}
	done chan struct{}
}

// StartController begins adjusting the cluster every virtual interval
// (scaled to wall time by the cluster's time scale). The aggregator must
// already be registered as a completion callback.
func StartController(c *Cluster, agg *core.Aggregator, policy core.Policy, interval time.Duration) *Controller {
	if c == nil || agg == nil || policy == nil {
		panic("live: controller requires a cluster, aggregator and policy")
	}
	if interval <= 0 {
		panic("live: controller interval must be positive")
	}
	ctl := &Controller{
		cluster: c,
		agg:     agg,
		policy:  policy,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	wall := c.wall(interval)
	if wall <= 0 {
		wall = time.Millisecond
	}
	go func() {
		defer close(ctl.done)
		ticker := time.NewTicker(wall)
		defer ticker.Stop()
		for {
			select {
			case <-ctl.stop:
				return
			case <-ticker.C:
				out := policy.Adjust(c, agg)
				ctl.mu.Lock()
				ctl.outcomes = append(ctl.outcomes, out)
				ctl.mu.Unlock()
			}
		}
	}()
	return ctl
}

// Outcomes returns a copy of the decisions taken so far.
func (ctl *Controller) Outcomes() []core.BoostOutcome {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	out := make([]core.BoostOutcome, len(ctl.outcomes))
	copy(out, ctl.outcomes)
	return out
}

// Stop halts the control loop and waits for it to exit.
func (ctl *Controller) Stop() {
	select {
	case <-ctl.stop:
	default:
		close(ctl.stop)
	}
	<-ctl.done
}
