package live

import (
	"time"

	"powerchief/internal/controlplane"
	"powerchief/internal/core"
)

// Clock returns the cluster's virtual-time clock for the control plane:
// Now is the cluster's compressed time, and Every ticks at the wall
// equivalent of the requested virtual interval.
func (c *Cluster) Clock() controlplane.Clock { return clusterClock{c: c} }

type clusterClock struct{ c *Cluster }

func (cc clusterClock) Now() time.Duration { return cc.c.Now() }

func (cc clusterClock) Every(interval time.Duration, fn func()) (stop func()) {
	return controlplane.TickerEvery(cc.c.wall(interval), fn)
}

// Controller drives a control policy against a live cluster — the Command
// Center's control loop of the real-system prototype. It is a thin veneer
// over the shared controlplane loop, kept for the facade's API: the loop
// owns the cadence, the bounded outcome history and the race-free stop.
type Controller struct {
	loop *controlplane.Loop
}

// StartController begins adjusting the cluster every virtual interval
// (scaled to wall time by the cluster's time scale). The aggregator must
// already be registered as a completion callback.
func StartController(c *Cluster, agg *core.Aggregator, policy core.Policy, interval time.Duration) *Controller {
	if c == nil || agg == nil || policy == nil {
		panic("live: controller requires a cluster, aggregator and policy")
	}
	if interval <= 0 {
		panic("live: controller interval must be positive")
	}
	loop, err := controlplane.Start(c.Clock(), controlplane.NewAdjuster(c, agg), controlplane.Options{
		Policy:   policy,
		Interval: interval,
	})
	if err != nil {
		panic("live: " + err.Error())
	}
	return &Controller{loop: loop}
}

// Loop exposes the underlying control-plane loop (error counters, boost
// tallies).
func (ctl *Controller) Loop() *controlplane.Loop { return ctl.loop }

// Outcomes returns a copy of the retained decisions, oldest first. The
// history is bounded (controlplane.DefaultHistory); Total keeps the full
// count.
func (ctl *Controller) Outcomes() []core.BoostOutcome { return ctl.loop.Outcomes() }

// Total counts every adjust over the controller's lifetime, including
// decisions the bounded history has dropped.
func (ctl *Controller) Total() uint64 { return ctl.loop.Total() }

// Stop halts the control loop and waits for it to exit. Safe to call
// concurrently and repeatedly.
func (ctl *Controller) Stop() { ctl.loop.Stop() }
