package controlplane

import (
	"testing"
	"time"

	"powerchief/internal/core"
	"powerchief/internal/sim"
)

// orderPolicy appends its tag to a shared log on every adjust.
type orderPolicy struct {
	tag string
	log *[]string
}

func (p orderPolicy) Name() string { return p.tag }
func (p orderPolicy) Adjust(core.System, *core.Aggregator) core.BoostOutcome {
	*p.log = append(*p.log, p.tag)
	return core.BoostOutcome{Kind: core.BoostNone}
}

type nopAdjuster struct{}

func (nopAdjuster) Adjust(p core.Policy) (core.BoostOutcome, error) {
	return p.Adjust(nil, nil), nil
}

// TestGroupNestedLoopsInterleaveDeterministically pins the registration
// contract: when an outer (arbiter) epoch coincides with inner (per-app)
// intervals on the shared DES clock, the loops fire in Go() call order —
// arbiter first, then each app in registration order.
func TestGroupNestedLoopsInterleaveDeterministically(t *testing.T) {
	eng := sim.NewEngine()
	g, err := NewGroup(SimClock(eng))
	if err != nil {
		t.Fatal(err)
	}
	var log []string
	// Outer arbiter every 2s, two inner app loops every 1s.
	if _, err := g.Go(nopAdjuster{}, Options{Policy: orderPolicy{"arbiter", &log}, Interval: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Go(nopAdjuster{}, Options{Policy: orderPolicy{"app-a", &log}, Interval: time.Second}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Go(nopAdjuster{}, Options{Policy: orderPolicy{"app-b", &log}, Interval: time.Second}); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(4 * time.Second)
	g.Stop()

	want := []string{
		"app-a", "app-b", // t=1s
		"arbiter", "app-a", "app-b", // t=2s: arbiter first
		"app-a", "app-b", // t=3s
		"arbiter", "app-a", "app-b", // t=4s
	}
	if len(log) != len(want) {
		t.Fatalf("fired %d epochs, want %d: %v", len(log), len(want), log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("epoch order diverged at %d: got %v, want %v", i, log, want)
		}
	}
	if got := len(g.Loops()); got != 3 {
		t.Fatalf("group tracks %d loops, want 3", got)
	}
}

// TestGroupStopIsIdempotent: Stop twice (and after engine teardown) must not
// hang or panic, and every loop's counters stay readable.
func TestGroupStopIsIdempotent(t *testing.T) {
	eng := sim.NewEngine()
	g, err := NewGroup(SimClock(eng))
	if err != nil {
		t.Fatal(err)
	}
	var log []string
	l, err := g.Go(nopAdjuster{}, Options{Policy: orderPolicy{"only", &log}, Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(3 * time.Second)
	g.Stop()
	g.Stop()
	if l.Total() != 3 {
		t.Fatalf("loop ran %d epochs, want 3", l.Total())
	}
}

// TestGroupRejectsNilClock pins the constructor contract.
func TestGroupRejectsNilClock(t *testing.T) {
	if _, err := NewGroup(nil); err == nil {
		t.Fatal("nil clock accepted")
	}
}
