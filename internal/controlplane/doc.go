// Package controlplane is the one control loop of the framework: the paper's
// Command Center cadence — adjust epochs, optional sample epochs, bounded
// outcome history, telemetry attachment and degraded-mode accounting — over
// a small Clock abstraction, so the discrete-event simulator, the in-process
// live cluster and the distributed runtime all drive policies through the
// same code instead of four hand-rolled loops.
//
// The pieces compose as decision → actuation → cadence:
//
//   - core.Planner/core.Executor split one interval into a pure decision
//     (an ActionPlan) and a validated, audited, rollback-capable apply;
//   - an Adjuster runs one interval against a backend (core.System +
//     Aggregator for DES/live, dist.Center for the distributed runtime);
//   - the Loop schedules Adjuster calls on a Clock and keeps the history.
//
// Determinism contract: on a SimClock the Loop registers the adjust epoch
// before the sample epoch, so same-timestamp events fire adjust-first —
// the order the DES harness has always used, which the golden figures pin.
package controlplane
