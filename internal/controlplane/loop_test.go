package controlplane

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"powerchief/internal/core"
	"powerchief/internal/fault"
	"powerchief/internal/sim"
)

// fakeAdjuster scripts the per-interval results.
type fakeAdjuster struct {
	mu    sync.Mutex
	calls int
	errAt map[int]error // 1-based call → error
}

func (f *fakeAdjuster) Adjust(p core.Policy) (core.BoostOutcome, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if err := f.errAt[f.calls]; err != nil {
		return core.BoostOutcome{}, err
	}
	return core.BoostOutcome{Kind: core.BoostFrequency, Target: fmt.Sprintf("call_%d", f.calls)}, nil
}

func (f *fakeAdjuster) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func TestLoopOnSimClockIsDeterministic(t *testing.T) {
	eng := sim.NewEngine()
	adj := &fakeAdjuster{}
	loop, err := Start(SimClock(eng), adj, Options{Policy: core.Static{}, Interval: 25 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(250 * time.Second)
	loop.Stop()
	if got := adj.count(); got != 10 {
		t.Errorf("adjust fired %d times over 250s at 25s, want 10", got)
	}
	if loop.Total() != 10 {
		t.Errorf("total = %d, want 10", loop.Total())
	}
	if b := loop.Boosts(); b[core.BoostFrequency] != 10 {
		t.Errorf("boosts = %v, want 10 freq", b)
	}
}

func TestLoopBoundsOutcomeHistory(t *testing.T) {
	eng := sim.NewEngine()
	adj := &fakeAdjuster{}
	loop, err := Start(SimClock(eng), adj, Options{Policy: core.Static{}, Interval: time.Second, History: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10 * time.Second)
	loop.Stop()
	outs := loop.Outcomes()
	if len(outs) != 4 {
		t.Fatalf("ring holds %d outcomes, want 4", len(outs))
	}
	// Oldest-first: calls 7..10 survive.
	for i, out := range outs {
		if want := fmt.Sprintf("call_%d", 7+i); out.Target != want {
			t.Errorf("outcomes[%d].Target = %q, want %q", i, out.Target, want)
		}
	}
	if loop.Total() != 10 {
		t.Errorf("total = %d, want 10 despite the bounded ring", loop.Total())
	}
}

func TestLoopAdjustRegistersBeforeSample(t *testing.T) {
	eng := sim.NewEngine()
	var order []string
	adj := adjusterFunc(func(core.Policy) (core.BoostOutcome, error) {
		order = append(order, "adjust")
		return core.BoostOutcome{}, nil
	})
	loop, err := Start(SimClock(eng), adj, Options{
		Policy:         core.Static{},
		Interval:       time.Second,
		SampleInterval: time.Second,
		OnSample:       func(time.Duration) { order = append(order, "sample") },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(2 * time.Second)
	loop.Stop()
	want := []string{"adjust", "sample", "adjust", "sample"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (equal timestamps must fire adjust-first)", order, want)
		}
	}
}

type adjusterFunc func(core.Policy) (core.BoostOutcome, error)

func (f adjusterFunc) Adjust(p core.Policy) (core.BoostOutcome, error) { return f(p) }

func TestLoopCountsDegradedIntervals(t *testing.T) {
	eng := sim.NewEngine()
	adj := &fakeAdjuster{errAt: map[int]error{
		1: fmt.Errorf("adjusting: %w", fault.ErrNoHealthyStages),
		2: fmt.Errorf("stage ASR: %w", fault.ErrStageDown),
		3: errors.New("some other failure"),
	}}
	var seen []error
	loop, err := Start(SimClock(eng), adj, Options{
		Policy:   core.Static{},
		Interval: time.Second,
		OnError:  func(err error) { seen = append(seen, err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(4 * time.Second)
	loop.Stop()
	if got := loop.Degraded(); got != 2 {
		t.Errorf("degraded = %d, want 2", got)
	}
	if n, last := loop.Errors(); n != 3 || last != nil && len(seen) != 3 {
		t.Errorf("errors = %d (last %v), callbacks = %d; want 3 errors, 3 callbacks", n, last, len(seen))
	}
	if loop.Total() != 1 {
		t.Errorf("total = %d, want 1 successful adjust", loop.Total())
	}
}

func TestStartValidation(t *testing.T) {
	eng := sim.NewEngine()
	clock := SimClock(eng)
	adj := &fakeAdjuster{}
	cases := map[string]func() (*Loop, error){
		"nil clock":    func() (*Loop, error) { return Start(nil, adj, Options{Policy: core.Static{}, Interval: 1}) },
		"nil adjuster": func() (*Loop, error) { return Start(clock, nil, Options{Policy: core.Static{}, Interval: 1}) },
		"nil policy":   func() (*Loop, error) { return Start(clock, adj, Options{Interval: 1}) },
		"zero interval": func() (*Loop, error) {
			return Start(clock, adj, Options{Policy: core.Static{}})
		},
	}
	for name, fn := range cases {
		if _, err := fn(); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// TestLoopStopConcurrently is the regression test for the double-close panic
// the old live controller had: many goroutines calling Stop at once must all
// return, exactly once closing the loop. Run with -race.
func TestLoopStopConcurrently(t *testing.T) {
	adj := &fakeAdjuster{}
	loop, err := Start(WallClock(0.001), adj, Options{Policy: core.Static{}, Interval: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			loop.Stop()
		}()
	}
	wg.Wait()
	loop.Stop() // still idempotent after the storm
}

func TestWallClockScalesIntervals(t *testing.T) {
	adj := &fakeAdjuster{}
	// 1 engine second = 1ms wall: a 5s interval ticks every 5ms.
	loop, err := Start(WallClock(0.001), adj, Options{Policy: core.Static{}, Interval: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for adj.count() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	loop.Stop()
	if adj.count() < 3 {
		t.Errorf("adjust fired %d times in 2s wall, want ≥ 3", adj.count())
	}
}
