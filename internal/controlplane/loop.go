package controlplane

import (
	"fmt"
	"sync"
	"time"

	"powerchief/internal/core"
	"powerchief/internal/fault"
	"powerchief/internal/telemetry"
)

// Adjuster runs one control interval of a policy against a backend.
// dist.Center satisfies it directly; DES and live systems adapt through
// NewAdjuster.
type Adjuster interface {
	Adjust(policy core.Policy) (core.BoostOutcome, error)
}

// NewAdjuster adapts a core.System and its aggregator — the DES view or the
// live cluster — into an Adjuster. Policy.Adjust against an in-process
// system cannot fail, so the error is always nil.
func NewAdjuster(sys core.System, agg *core.Aggregator) Adjuster {
	return sysAdjuster{sys: sys, agg: agg}
}

type sysAdjuster struct {
	sys core.System
	agg *core.Aggregator
}

func (a sysAdjuster) Adjust(p core.Policy) (core.BoostOutcome, error) {
	return p.Adjust(a.sys, a.agg), nil
}

// DefaultHistory bounds the outcome ring when Options.History is zero.
const DefaultHistory = 1024

// Options configures a Loop.
type Options struct {
	// Policy decides each interval. Required.
	Policy core.Policy
	// Interval is the adjust cadence in engine time. Required.
	Interval time.Duration
	// SampleInterval, with OnSample, adds a sampling epoch (trace series,
	// power integrals). It registers after the adjust epoch so same-time
	// DES events fire adjust-first.
	SampleInterval time.Duration
	// OnSample is invoked each sample epoch with the clock's current time.
	OnSample func(now time.Duration)
	// History bounds the outcome ring; zero means DefaultHistory. The ring
	// plus the Total counter hold week-long runs in constant memory.
	History int
	// Audit, when set, is attached to the policy (if it accepts one) so the
	// decision trail lands in the telemetry log.
	Audit *telemetry.AuditLog
	// Tap, when set, is attached to the policy (if it accepts one, i.e. it
	// implements core.TapSetter) so every adjust interval's decision —
	// snapshot, plan, outcome — is recorded for offline replay.
	Tap core.DecisionTap
	// OnOutcome observes every successful adjust (after recording).
	OnOutcome func(core.BoostOutcome)
	// OnError observes every failed adjust (degraded or not).
	OnError func(error)
}

// Loop is the running control loop: adjust epochs deciding and actuating
// through the policy, an optional sampling epoch, and bounded bookkeeping.
type Loop struct {
	clock Clock
	adj   Adjuster
	opts  Options

	mu       sync.Mutex
	ring     []core.BoostOutcome
	start, n int
	total    uint64
	boosts   map[core.BoostKind]int
	degraded uint64
	errs     uint64
	lastErr  error

	stopAdjust func()
	stopSample func()
	stopOnce   sync.Once
	stopped    chan struct{}
}

// Start validates the options and registers the loop's epochs on the clock.
// The first adjust fires one interval from now.
func Start(clock Clock, adj Adjuster, opts Options) (*Loop, error) {
	if clock == nil {
		return nil, fmt.Errorf("controlplane: nil clock")
	}
	if adj == nil {
		return nil, fmt.Errorf("controlplane: nil adjuster")
	}
	if opts.Policy == nil {
		return nil, fmt.Errorf("controlplane: nil policy")
	}
	if opts.Interval <= 0 {
		return nil, fmt.Errorf("controlplane: adjust interval must be positive")
	}
	if opts.History <= 0 {
		opts.History = DefaultHistory
	}
	if opts.Audit != nil {
		if as, ok := opts.Policy.(core.AuditSetter); ok {
			as.SetAudit(opts.Audit)
		}
	}
	if opts.Tap != nil {
		if ts, ok := opts.Policy.(core.TapSetter); ok {
			ts.SetTap(opts.Tap)
		}
	}
	l := &Loop{
		clock:   clock,
		adj:     adj,
		opts:    opts,
		ring:    make([]core.BoostOutcome, opts.History),
		boosts:  make(map[core.BoostKind]int),
		stopped: make(chan struct{}),
	}
	// Registration order is part of the determinism contract: adjust before
	// sample, so equal-timestamp DES events fire in that order.
	l.stopAdjust = clock.Every(opts.Interval, l.step)
	if opts.SampleInterval > 0 && opts.OnSample != nil {
		l.stopSample = clock.Every(opts.SampleInterval, func() { opts.OnSample(l.clock.Now()) })
	}
	return l, nil
}

// step runs one adjust epoch.
func (l *Loop) step() {
	out, err := l.adj.Adjust(l.opts.Policy)
	if err != nil {
		l.mu.Lock()
		l.errs++
		l.lastErr = err
		if fault.IsDegraded(err) {
			// Degraded mode: the backend is partially down. The loop keeps
			// ticking — quarantined stages re-admit through the health
			// machine, and skipping intervals would stall the survivors'
			// power allocation.
			l.degraded++
		}
		l.mu.Unlock()
		if l.opts.OnError != nil {
			l.opts.OnError(err)
		}
		return
	}
	l.mu.Lock()
	idx := (l.start + l.n) % len(l.ring)
	l.ring[idx] = out
	if l.n < len(l.ring) {
		l.n++
	} else {
		l.start = (l.start + 1) % len(l.ring)
	}
	l.total++
	l.boosts[out.Kind]++
	l.mu.Unlock()
	if l.opts.OnOutcome != nil {
		l.opts.OnOutcome(out)
	}
}

// Outcomes returns a copy of the retained decisions, oldest first. The ring
// holds at most Options.History entries; Total counts everything.
func (l *Loop) Outcomes() []core.BoostOutcome {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]core.BoostOutcome, l.n)
	for i := 0; i < l.n; i++ {
		out[i] = l.ring[(l.start+i)%len(l.ring)]
	}
	return out
}

// Total counts every successful adjust over the loop's lifetime, including
// outcomes the ring has dropped.
func (l *Loop) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Boosts tallies outcomes by kind over the loop's lifetime.
func (l *Loop) Boosts() map[core.BoostKind]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[core.BoostKind]int, len(l.boosts))
	for k, v := range l.boosts {
		out[k] = v
	}
	return out
}

// Errors returns the failed-adjust count and the most recent failure.
func (l *Loop) Errors() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.errs, l.lastErr
}

// Degraded counts adjusts that failed because the backend had quarantined
// stages (fault.ErrStageDown, re-exported as dist.ErrStageDown) or none
// left (fault.ErrNoHealthyStages).
func (l *Loop) Degraded() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.degraded
}

// Stop halts both epochs and waits for any in-flight adjust to finish. It
// is safe to call concurrently and repeatedly: every caller blocks until
// the loop has fully stopped.
func (l *Loop) Stop() {
	l.stopOnce.Do(func() {
		l.stopAdjust()
		if l.stopSample != nil {
			l.stopSample()
		}
		close(l.stopped)
	})
	<-l.stopped
}
