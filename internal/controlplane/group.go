package controlplane

import (
	"fmt"
	"sync"
)

// Group is a set of nested control loops sharing one Clock: the outer
// cross-app arbiter epoch and the per-app PowerChief loops under a
// multi-tenant budget hierarchy, or any other stack of control cadences
// that must interleave deterministically.
//
// Registration order is the determinism contract, extended from the single
// loop's adjust-before-sample rule: loops added earlier register their
// epochs on the clock earlier, so when several fire at the same virtual
// instant — an arbiter epoch that is a multiple of an app's control
// interval — they run in Go() call order. Register the arbiter first: each
// app loop then reacts to its fresh grant in the same instant, one epoch of
// staleness never accumulates, and a DES run is reproducible bit for bit.
type Group struct {
	clock Clock

	mu    sync.Mutex
	loops []*Loop
}

// NewGroup builds an empty group over the shared clock.
func NewGroup(clock Clock) (*Group, error) {
	if clock == nil {
		return nil, fmt.Errorf("controlplane: group needs a clock")
	}
	return &Group{clock: clock}, nil
}

// Clock returns the shared clock.
func (g *Group) Clock() Clock { return g.clock }

// Go starts one loop on the shared clock and tracks it for Stop. Options
// are the same as Start's.
func (g *Group) Go(adj Adjuster, opts Options) (*Loop, error) {
	l, err := Start(g.clock, adj, opts)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	g.loops = append(g.loops, l)
	g.mu.Unlock()
	return l, nil
}

// Loops returns the started loops in registration order.
func (g *Group) Loops() []*Loop {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Loop, len(g.loops))
	copy(out, g.loops)
	return out
}

// Stop halts every loop in reverse registration order — inner per-app loops
// first, the outer arbiter last, mirroring teardown of any layered system —
// and waits for in-flight adjusts to finish. Safe to call repeatedly.
func (g *Group) Stop() {
	g.mu.Lock()
	loops := make([]*Loop, len(g.loops))
	copy(loops, g.loops)
	g.mu.Unlock()
	for i := len(loops) - 1; i >= 0; i-- {
		loops[i].Stop()
	}
}
