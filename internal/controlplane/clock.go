package controlplane

import (
	"sync"
	"time"

	"powerchief/internal/sim"
)

// Clock abstracts the control loop's notion of time: virtual for the
// discrete-event simulator, scaled wall time for the live and distributed
// runtimes. Intervals passed to Every are in engine time; implementations
// translate to their own cadence.
type Clock interface {
	// Now returns the current engine time.
	Now() time.Duration
	// Every invokes fn at the given engine-time interval until the returned
	// stop function is called. Stop blocks until no invocation is in flight.
	Every(interval time.Duration, fn func()) (stop func())
}

// SimClock drives the loop from a discrete-event engine: epochs are
// simulator events, fired deterministically in registration order at equal
// timestamps.
func SimClock(eng *sim.Engine) Clock { return simClock{eng: eng} }

type simClock struct{ eng *sim.Engine }

func (c simClock) Now() time.Duration { return c.eng.Now() }

func (c simClock) Every(interval time.Duration, fn func()) (stop func()) {
	return c.eng.Every(interval, fn)
}

// WallClock runs engine time as wall time compressed by scale: one engine
// second lasts scale wall seconds (scale 1 is real time, 0.01 is the
// examples' 100× compression). Non-positive scales default to 1.
func WallClock(scale float64) Clock {
	if scale <= 0 {
		scale = 1
	}
	return &wallClock{scale: scale, start: time.Now()}
}

type wallClock struct {
	scale float64
	start time.Time
}

func (c *wallClock) Now() time.Duration {
	return time.Duration(float64(time.Since(c.start)) / c.scale)
}

func (c *wallClock) Every(interval time.Duration, fn func()) (stop func()) {
	wall := time.Duration(float64(interval) * c.scale)
	return TickerEvery(wall, fn)
}

// TickerEvery runs fn on a wall-clock ticker until the returned stop
// function is called. Stop is idempotent and waits for the loop goroutine
// (and any in-flight fn) to exit. Sub-millisecond intervals are clamped to
// one millisecond. Custom Clock implementations (the live cluster's
// virtual-time clock) build their Every on top of this.
func TickerEvery(wall time.Duration, fn func()) (stop func()) {
	if wall <= 0 {
		wall = time.Millisecond
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(wall)
		defer ticker.Stop()
		for {
			select {
			case <-quit:
				return
			case <-ticker.C:
				fn()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(quit) })
		<-done
	}
}
