package fleet

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestFleetSimDeterministic runs the recorded 100-node scenario twice and
// demands byte-identical JSON — the determinism contract the benchmark
// record rides on — plus the robustness acceptance criteria: no budget
// violation at any epoch, no watts stranded on quarantined nodes past the
// reclamation epoch, convergence within a few epochs of the 10-node kill,
// and fencing of every healed partition's stale state.
func TestFleetSimDeterministic(t *testing.T) {
	p := DefaultSimParams()
	r1, err := RunFleetSim(p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunFleetSim(p)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := json.Marshal(r1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("two identical fleet sims produced different bytes")
	}

	if r1.Violations != 0 {
		t.Errorf("%d epochs violated Σ granted ≤ budget", r1.Violations)
	}
	if r1.StrandedSamples != 0 {
		t.Errorf("%d epochs observed unreclaimed watts on quarantined nodes", r1.StrandedSamples)
	}
	if r1.ConvergedAt == 0 || r1.ConvergedAt > p.KillAt+3*p.Interval {
		t.Errorf("convergence after the kill at %v, want within 3 epochs of %v", r1.ConvergedAt, p.KillAt)
	}
	if r1.RecoveredAt == 0 || r1.RecoveredAt > p.HealAt+3*p.Interval {
		t.Errorf("recovery after the heal at %v, want within 3 epochs of %v", r1.RecoveredAt, p.HealAt)
	}
	if r1.Quarantines != uint64(p.KillCount) || r1.Readmissions != uint64(p.KillCount) {
		t.Errorf("quarantines/readmissions = %d/%d, want %d/%d",
			r1.Quarantines, r1.Readmissions, p.KillCount, p.KillCount)
	}
	if r1.Fenced < uint64(p.KillCount) {
		t.Errorf("fenced %d stale reports, want at least one per healed partition (%d)", r1.Fenced, p.KillCount)
	}
	if len(r1.Samples) == 0 {
		t.Fatal("no samples recorded")
	}
}

// TestFleetSimKillRestart covers the other failure flavour: killed nodes
// come back restarted (epoch 0, empty budget) and are still fenced and
// re-admitted budget-safely.
func TestFleetSimKillRestart(t *testing.T) {
	p := SimParams{
		Nodes: 10, Budget: 100, Floor: 5,
		Interval: time.Second, Duration: 40 * time.Second,
		KillAt: 10 * time.Second, HealAt: 25 * time.Second,
		KillCount: 3, Restart: true,
	}
	r, err := RunFleetSim(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Violations != 0 || r.StrandedSamples != 0 {
		t.Errorf("violations/stranded = %d/%d, want 0/0", r.Violations, r.StrandedSamples)
	}
	if r.Readmissions != uint64(p.KillCount) {
		t.Errorf("readmissions = %d, want %d", r.Readmissions, p.KillCount)
	}
	if r.Fenced < uint64(p.KillCount) {
		t.Errorf("fenced %d, want at least one per restarted node (%d)", r.Fenced, p.KillCount)
	}
	if r.RecoveredAt == 0 {
		t.Error("fleet never recovered after the heal")
	}
}
