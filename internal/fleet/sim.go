package fleet

import (
	"fmt"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/controlplane"
	"powerchief/internal/fault"
	"powerchief/internal/sim"
)

// SimNode is the Transport in virtual time: a synthetic node living inside
// the discrete-event engine, with a scriptable fault window. Everything is
// a pure function of virtual time and the grant history, so a fleet of
// SimNodes under the SimClock-driven coordinator is byte-deterministic.
//
// SimNode has no locks: in simulation the coordinator, the sampler and the
// nodes all run on the engine's single event goroutine.
type SimNode struct {
	name string
	now  func() time.Duration
	load float64

	budget cmp.Watts
	epoch  uint64

	failFrom, failTo time.Duration
	restart          bool
	reset            bool
}

// NewSimNode builds a node with the given work intensity (the SynthBackend
// scale: 1.0 is one saturated max-level core's worth).
func NewSimNode(name string, now func() time.Duration, load float64) *SimNode {
	return &SimNode{name: name, now: now, load: load}
}

// FailBetween makes the node unreachable for the virtual window [from, to).
// With restart true the node comes back restarted — empty budget, epoch 0 —
// the kill signature; with restart false it keeps its pre-partition state,
// so its first post-heal report echoes a stale epoch and must be fenced.
func (n *SimNode) FailBetween(from, to time.Duration, restart bool) {
	n.failFrom, n.failTo = from, to
	n.restart = restart
	n.reset = false
}

// down reports whether the node is inside its fault window.
func (n *SimNode) down() bool {
	t := n.now()
	return n.failFrom < n.failTo && t >= n.failFrom && t < n.failTo
}

// heal applies the one-time restart reset when the fault window has passed.
func (n *SimNode) heal() {
	if n.restart && !n.reset && n.failFrom < n.failTo && n.now() >= n.failTo {
		n.reset = true
		n.epoch = 0
		n.budget = 0
	}
}

// Name implements Transport.
func (n *SimNode) Name() string { return n.name }

// Report implements Transport.
func (n *SimNode) Report() (Report, error) {
	if n.down() {
		return Report{}, fmt.Errorf("sim: node %s unreachable", n.name)
	}
	n.heal()
	return Report{
		Node:   n.name,
		Epoch:  n.epoch,
		Metric: synthMetric(n.load, n.budget),
		Draw:   n.budget,
		Budget: n.budget,
		Stages: synthStages(n.load, n.budget),
	}, nil
}

// Grant implements Transport.
func (n *SimNode) Grant(g Grant) error {
	if n.down() {
		return fmt.Errorf("sim: node %s unreachable", n.name)
	}
	n.heal()
	if g.Epoch < n.epoch {
		return fmt.Errorf("sim: grant epoch %d behind accepted %d: %w", g.Epoch, n.epoch, fault.ErrStaleEpoch)
	}
	n.epoch = g.Epoch
	n.budget = g.Watts
	return nil
}

// Budget returns the node's current local budget (test introspection).
func (n *SimNode) Budget() cmp.Watts { return n.budget }

// SimParams scripts one deterministic fleet run: N nodes with a fixed load
// spread, a mass kill at KillAt healing at HealAt, under one coordinator.
type SimParams struct {
	Nodes     int           `json:"nodes"`
	Budget    cmp.Watts     `json:"budget_watts"`
	Floor     cmp.Watts     `json:"floor_watts"`
	Interval  time.Duration `json:"interval_ns"`
	Duration  time.Duration `json:"duration_ns"`
	KillAt    time.Duration `json:"kill_at_ns"`
	HealAt    time.Duration `json:"heal_at_ns"`
	KillCount int           `json:"kill_count"`
	// Restart selects the failure flavour: true is kill-and-restart (state
	// lost), false is a partition (state — and stale epoch — kept).
	Restart bool `json:"restart"`
}

// DefaultSimParams is the recorded benchmark scenario: a 100-node fleet, 10
// nodes partitioned mid-run, epochs of one virtual second.
func DefaultSimParams() SimParams {
	return SimParams{
		Nodes:     100,
		Budget:    1000,
		Floor:     5,
		Interval:  time.Second,
		Duration:  120 * time.Second,
		KillAt:    30 * time.Second,
		HealAt:    80 * time.Second,
		KillCount: 10,
		Restart:   false,
	}
}

// SimSample is one per-epoch observation of the cluster invariant.
type SimSample struct {
	T time.Duration `json:"t_ns"`
	// Granted is Σ granted node budgets; the invariant is Granted ≤ Budget.
	Granted cmp.Watts `json:"granted_watts"`
	Healthy int       `json:"healthy"`
	// Quarantined counts Down plus Recovering nodes.
	Quarantined int `json:"quarantined"`
	// Stranded is the watts still granted to quarantined nodes — nonzero at
	// a sample means reclamation missed its one-epoch deadline (samples run
	// after the adjust epoch at the same virtual instant).
	Stranded cmp.Watts `json:"stranded_watts"`
}

// SimResult is the full record of one RunFleetSim, JSON-stable for golden
// comparisons: same params, same bytes.
type SimResult struct {
	Params  SimParams   `json:"params"`
	Samples []SimSample `json:"samples"`
	// Violations counts samples where Σ granted exceeded the cluster budget.
	Violations int `json:"violations"`
	// StrandedSamples counts samples observing unreclaimed watts on
	// quarantined nodes.
	StrandedSamples int `json:"stranded_samples"`
	// ConvergedAt is the first post-kill sample where every killed node is
	// quarantined and the reclaimed watts are fully redistributed (headroom
	// back under one floor); 0 if never reached.
	ConvergedAt time.Duration `json:"converged_at_ns"`
	// RecoveredAt is the first post-heal sample with nothing quarantined
	// and the budget again fully allocated; 0 if never reached.
	RecoveredAt  time.Duration `json:"recovered_at_ns"`
	Quarantines  uint64        `json:"quarantines"`
	Readmissions uint64        `json:"readmissions"`
	Fenced       uint64        `json:"fenced"`
}

// RunFleetSim runs the scripted fleet scenario in virtual time and returns
// the per-epoch record. The coordinator's adjust epoch registers on the
// engine before the sampler, so at equal timestamps each sample observes
// the post-adjust ledger — the determinism contract the invariant checks
// ride on.
func RunFleetSim(p SimParams) (*SimResult, error) {
	if p.Nodes <= 0 || p.Interval <= 0 || p.Duration <= 0 {
		return nil, fmt.Errorf("fleet: sim needs nodes, an interval and a duration")
	}
	if p.KillCount > p.Nodes {
		return nil, fmt.Errorf("fleet: cannot kill %d of %d nodes", p.KillCount, p.Nodes)
	}
	eng := sim.NewEngine()
	nodes := make([]*SimNode, p.Nodes)
	transports := make([]Transport, p.Nodes)
	for i := range nodes {
		// A fixed load spread (1.0 to 2.5 in steps of 0.25) so the
		// metric-weighted redistribution has structure to find.
		load := 1 + float64(i%7)*0.25
		n := NewSimNode(fmt.Sprintf("node-%03d", i), eng.Now, load)
		if i < p.KillCount && p.KillAt < p.HealAt {
			n.FailBetween(p.KillAt, p.HealAt, p.Restart)
		}
		nodes[i] = n
		transports[i] = n
	}
	coord, err := NewCoordinator(Options{
		Budget: p.Budget,
		Floor:  p.Floor,
		Now:    eng.Now,
	}, transports...)
	if err != nil {
		return nil, err
	}
	loop, err := controlplane.Start(controlplane.SimClock(eng), coord, controlplane.Options{
		Policy:   NewRebalance(),
		Interval: p.Interval,
	})
	if err != nil {
		return nil, err
	}

	res := &SimResult{Params: p}
	stopSample := eng.Every(p.Interval, func() {
		healths := coord.Healths()
		granted := coord.Granted()
		s := SimSample{T: eng.Now(), Granted: coord.Draw()}
		for name, h := range healths {
			switch h {
			case fault.Healthy, fault.Suspect:
				s.Healthy++
			default:
				s.Quarantined++
				s.Stranded += granted[name]
			}
		}
		res.Samples = append(res.Samples, s)
		if s.Granted > p.Budget+1e-9 {
			res.Violations++
		}
		if s.Stranded > 1e-9 {
			res.StrandedSamples++
		}
		if res.ConvergedAt == 0 && p.KillCount > 0 && s.T >= p.KillAt &&
			s.Quarantined == p.KillCount && p.Budget-s.Granted <= p.Floor {
			res.ConvergedAt = s.T
		}
		if res.RecoveredAt == 0 && p.KillCount > 0 && s.T >= p.HealAt &&
			s.Quarantined == 0 && p.Budget-s.Granted <= p.Floor {
			res.RecoveredAt = s.T
		}
	})

	eng.RunUntil(p.Duration)
	stopSample()
	loop.Stop()
	res.Quarantines, res.Readmissions, res.Fenced = coord.Counts()
	return res, nil
}
