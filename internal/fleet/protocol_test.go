package fleet

import (
	"encoding/json"
	"testing"
	"time"

	"powerchief/internal/arbiter"
)

// TestReportWireBackCompat pins the Stages field's interop contract: a
// scalar-only report marshals byte-identically to the pre-breakdown wire
// format (omitempty), and frames from old nodes — no "stages" key — decode
// into a nil breakdown.
func TestReportWireBackCompat(t *testing.T) {
	scalar := Report{Node: "n1", Epoch: 7, Metric: 250 * time.Millisecond, Draw: 30, Budget: 40}
	b, err := json.Marshal(scalar)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"node":"n1","epoch":7,"metric":250000000,"draw":30,"budget":40}`
	if string(b) != want {
		t.Fatalf("scalar report frame changed:\n got %s\nwant %s", b, want)
	}

	var decoded Report
	if err := json.Unmarshal([]byte(want), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Stages != nil {
		t.Fatalf("old frame decoded with a breakdown: %+v", decoded.Stages)
	}
	if decoded.Metric != scalar.Metric || decoded.Budget != scalar.Budget {
		t.Fatalf("old frame lost fields: %+v", decoded)
	}
}

// TestReportCarriesStageBreakdown round-trips the per-stage Equation 1
// breakdown through the wire format.
func TestReportCarriesStageBreakdown(t *testing.T) {
	rep := Report{
		Node: "n2", Epoch: 3, Metric: time.Second, Draw: 10, Budget: 20,
		Stages: []arbiter.StageMetric{
			{Stage: "ingress", Metric: 400 * time.Millisecond},
			{Stage: "compute", Metric: time.Second},
		},
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Stages) != 2 || back.Stages[1].Stage != "compute" || back.Stages[1].Metric != time.Second {
		t.Fatalf("breakdown did not round-trip: %+v", back.Stages)
	}
}

// TestCoordinatorIngestsBreakdown proves the coordinator stores a node's
// forwarded breakdown (epoch-fenced, like the scalar metric) and exposes it
// through both HealthyNodes and the arbiter.View Members.
func TestCoordinatorIngestsBreakdown(t *testing.T) {
	nowFn := func() time.Duration { return 0 }
	n := NewSimNode("node-0", nowFn, 1.5)
	coord, err := NewCoordinator(Options{Budget: 100, Floor: 10}, n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Adjust(NewRebalance()); err != nil {
		t.Fatal(err)
	}
	// The first epoch granted; the second ingests a fenced report with the
	// breakdown attached.
	if _, err := coord.Adjust(NewRebalance()); err != nil {
		t.Fatal(err)
	}
	nodes := coord.HealthyNodes()
	if len(nodes) != 1 || len(nodes[0].Breakdown) == 0 {
		t.Fatalf("HealthyNodes missing breakdown: %+v", nodes)
	}
	members := coord.Members()
	if len(members) != 1 || len(members[0].Breakdown) != len(nodes[0].Breakdown) {
		t.Fatalf("Members missing breakdown: %+v", members)
	}
	if members[0].Breakdown[len(members[0].Breakdown)-1].Metric != nodes[0].Metric {
		t.Fatalf("bottleneck stage %v does not match scalar metric %v",
			members[0].Breakdown, nodes[0].Metric)
	}
}
