package fleet

import (
	"fmt"
	"math"
	"testing"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/core"
)

// fakeNodeCtl is a ledger-less NodeControl for planner tests.
type fakeNodeCtl struct {
	name    string
	granted cmp.Watts
	failSet bool
	sets    []cmp.Watts
}

func (f *fakeNodeCtl) Name() string      { return f.name }
func (f *fakeNodeCtl) Budget() cmp.Watts { return f.granted }
func (f *fakeNodeCtl) SetBudget(w cmp.Watts) error {
	if f.failSet {
		return fmt.Errorf("fake: node %s unreachable", f.name)
	}
	f.granted = w
	f.sets = append(f.sets, w)
	return nil
}

// fakeCluster is a hand-built ClusterView.
type fakeCluster struct {
	budget, floor, hyst cmp.Watts
	nodes               []*fakeNodeCtl
	metrics             []time.Duration
	pinned              []bool
	// held is watts granted outside the healthy set (unreclaimed quarantine).
	held cmp.Watts
}

func (f *fakeCluster) Now() time.Duration         { return 0 }
func (f *fakeCluster) PowerModel() cmp.PowerModel { return cmp.DefaultModel() }
func (f *fakeCluster) Budget() cmp.Watts          { return f.budget }
func (f *fakeCluster) Draw() cmp.Watts {
	sum := f.held
	for _, n := range f.nodes {
		sum += n.granted
	}
	return sum
}
func (f *fakeCluster) Headroom() cmp.Watts              { return f.budget - f.Draw() }
func (f *fakeCluster) FreeCores() int                   { return 0 }
func (f *fakeCluster) Stages() []core.StageControl      { return nil }
func (f *fakeCluster) Quarantined() []core.StageControl { return nil }
func (f *fakeCluster) Floor() cmp.Watts                 { return f.floor }
func (f *fakeCluster) Hysteresis() cmp.Watts            { return f.hyst }
func (f *fakeCluster) HealthyNodes() []NodeView {
	out := make([]NodeView, len(f.nodes))
	for i, n := range f.nodes {
		out[i] = NodeView{Control: n, Granted: n.granted, Metric: f.metrics[i], Pinned: f.pinned[i]}
	}
	return out
}

func newFakeCluster(budget, floor, hyst cmp.Watts, grants []cmp.Watts, metrics []time.Duration) *fakeCluster {
	f := &fakeCluster{budget: budget, floor: floor, hyst: hyst, metrics: metrics, pinned: make([]bool, len(grants))}
	for i, g := range grants {
		f.nodes = append(f.nodes, &fakeNodeCtl{name: fmt.Sprintf("n%d", i), granted: g})
	}
	return f
}

func wattsNear(a, b cmp.Watts) bool { return math.Abs(float64(a-b)) < 1e-6 }

// TestRebalanceMetricWeighted: from a cold start, every node gets the floor
// plus a share of the extra proportional to its bottleneck metric, and the
// pool is fully allocated.
func TestRebalanceMetricWeighted(t *testing.T) {
	fc := newFakeCluster(60, 10, 0.1,
		[]cmp.Watts{0, 0, 0},
		[]time.Duration{time.Second, 2 * time.Second, 3 * time.Second})
	out := NewRebalance().Adjust(fc, nil)
	if out.Kind != core.BoostNone {
		t.Fatalf("outcome %v, want none", out.Kind)
	}
	want := []cmp.Watts{15, 20, 25} // 10 + 30×(1|2|3)/6
	for i, n := range fc.nodes {
		if !wattsNear(n.granted, want[i]) {
			t.Errorf("node %d granted %v, want %v", i, n.granted, want[i])
		}
	}
	if !wattsNear(fc.Draw(), 60) {
		t.Errorf("pool not fully allocated: draw %v of 60", fc.Draw())
	}
}

// TestRebalanceOrdersDecreasesFirst: the emitted plan frees watts before
// spending them, so the executor's in-order budget replay never sees an
// over-cap intermediate state.
func TestRebalanceOrdersDecreasesFirst(t *testing.T) {
	// Node 0 is over its target, node 1 under; the pool is fully granted.
	fc := newFakeCluster(60, 10, 0.1,
		[]cmp.Watts{45, 15},
		[]time.Duration{time.Second, 3 * time.Second})
	plan, _ := NewRebalance().Plan(fc, nil)
	if len(plan.Actions) != 2 {
		t.Fatalf("plan has %d actions, want 2:\n%s", len(plan.Actions), plan.Describe())
	}
	first := plan.Actions[0].(*core.SetBudgetAction)
	second := plan.Actions[1].(*core.SetBudgetAction)
	if first.To >= first.From {
		t.Errorf("first action is not a decrease: %s", first.Describe())
	}
	if second.To <= second.From {
		t.Errorf("second action is not an increase: %s", second.Describe())
	}
	if err := (core.Executor{}).Validate(fc, plan); err != nil {
		t.Errorf("ordered plan failed validation: %v", err)
	}
}

// TestRebalanceHysteresisHoldsSteadyState: metric noise below the threshold
// produces an empty plan — the flap guard.
func TestRebalanceHysteresisHoldsSteadyState(t *testing.T) {
	fc := newFakeCluster(60, 10, 5,
		[]cmp.Watts{30, 30},
		[]time.Duration{time.Second, 1100 * time.Millisecond})
	plan, _ := NewRebalance().Plan(fc, nil)
	if !plan.Empty() {
		t.Fatalf("noisy metrics moved budgets:\n%s", plan.Describe())
	}
}

// TestRebalanceRedistributesLeftover: when hysteresis keeps (or a shrunken
// fleet) leave headroom unallocated, the leftover is spread anyway — the
// flap guard must never strand watts.
func TestRebalanceRedistributesLeftover(t *testing.T) {
	// Both nodes' computed moves (25→30) sit exactly at the hysteresis, so
	// both are kept — but 10 W of the pool would go unallocated.
	fc := newFakeCluster(60, 10, 5,
		[]cmp.Watts{25, 25},
		[]time.Duration{time.Second, time.Second})
	NewRebalance().Adjust(fc, nil)
	if !wattsNear(fc.Draw(), 60) {
		t.Fatalf("leftover stranded: draw %v of 60 (grants %v, %v)",
			fc.Draw(), fc.nodes[0].granted, fc.nodes[1].granted)
	}
}

// TestRebalancePinnedHoldsFloor: a freshly re-admitted node in cooldown
// holds the floor and does not compete for extra watts.
func TestRebalancePinnedHoldsFloor(t *testing.T) {
	fc := newFakeCluster(60, 10, 0.1,
		[]cmp.Watts{25, 25, 10},
		[]time.Duration{time.Second, time.Second, 10 * time.Second})
	fc.pinned[2] = true
	NewRebalance().Adjust(fc, nil)
	if !wattsNear(fc.nodes[2].granted, 10) {
		t.Errorf("pinned node granted %v, want the 10W floor", fc.nodes[2].granted)
	}
	if !wattsNear(fc.Draw(), 60) {
		t.Errorf("pool not fully allocated: draw %v of 60", fc.Draw())
	}
}

// TestRebalanceExcludesQuarantineHeldWatts: watts still granted to a
// quarantined node (not yet reclaimed) stay out of the distributable pool,
// so Σ granted ≤ budget holds even mid-reclamation.
func TestRebalanceExcludesQuarantineHeldWatts(t *testing.T) {
	fc := newFakeCluster(60, 10, 0.1,
		[]cmp.Watts{20, 20},
		[]time.Duration{time.Second, time.Second})
	fc.held = 15 // a downed node still holds 15 W
	NewRebalance().Adjust(fc, nil)
	if fc.Draw() > 60+1e-9 {
		t.Fatalf("draw %v over the 60W budget", fc.Draw())
	}
	if got := fc.nodes[0].granted + fc.nodes[1].granted; !wattsNear(got, 45) {
		t.Errorf("healthy grants %v, want the 45W pool outside the held watts", got)
	}
}

// TestRebalanceRollsBackOnGrantFailure: a node dying between the heartbeat
// and its grant fails the plan mid-apply; the executor restores the applied
// prefix, so the ledger never straddles two allocations.
func TestRebalanceRollsBackOnGrantFailure(t *testing.T) {
	fc := newFakeCluster(60, 10, 0.1,
		[]cmp.Watts{0, 0},
		[]time.Duration{time.Second, time.Second})
	fc.nodes[1].failSet = true
	out := NewRebalance().Adjust(fc, nil)
	if out.Kind != core.BoostNone {
		t.Fatalf("outcome %v, want none", out.Kind)
	}
	if got := fc.nodes[0].granted; !wattsNear(got, 0) {
		t.Errorf("node 0 granted %v after rollback, want its original 0", got)
	}
	if len(fc.nodes[0].sets) != 2 {
		t.Errorf("node 0 saw %d grants, want apply+rollback", len(fc.nodes[0].sets))
	}
}
