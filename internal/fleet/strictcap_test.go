package fleet

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/fault"
	"powerchief/internal/telemetry"
)

// Strict-cap coverage models the one thing the RPC chaos harness cannot see:
// the watts a node PHYSICALLY draws, which track the last grant the node
// accepted — not the coordinator's ledger. A partitioned node fails every
// exchange but keeps drawing its old grant until its own partition detection
// self-fences it some epochs later. Re-granting the reclaimed watts before
// that happens pushes the cluster's physical draw over the cap; StrictCap
// holds them back for exactly that window.

var errCapPartitioned = errors.New("fleet test: partitioned")

// capNode is an in-process Transport with a physical-draw model.
type capNode struct {
	name           string
	metric         time.Duration
	selfFenceAfter int // silent epochs before the node fences itself

	mu           sync.Mutex
	granted      cmp.Watts // last ACCEPTED grant — what the node draws
	epoch        uint64
	partitioned  bool
	silentEpochs int
}

func (n *capNode) Name() string { return n.name }

func (n *capNode) Report() (Report, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.partitioned {
		return Report{}, errCapPartitioned
	}
	return Report{Node: n.name, Epoch: n.epoch, Metric: n.metric,
		Draw: n.granted, Budget: n.granted}, nil
}

func (n *capNode) Grant(g Grant) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.partitioned {
		return errCapPartitioned
	}
	// Accepting a grant proves the node is reachable again: it draws the
	// new value and its partition-detection clock resets.
	n.granted = g.Watts
	n.epoch = g.Epoch
	n.silentEpochs = 0
	return nil
}

// physical is the node's actual draw: the last accepted grant, unless the
// node has noticed the partition and fenced itself down to zero.
func (n *capNode) physical() cmp.Watts {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.silentEpochs >= n.selfFenceAfter {
		return 0
	}
	return n.granted
}

func (n *capNode) partition(on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitioned = on
	if !on {
		n.silentEpochs = 0
	}
}

// tick ages a partitioned node's own detection clock by one epoch.
func (n *capNode) tick() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.partitioned {
		n.silentEpochs++
	}
}

// capHarness is a coordinator over physical-draw nodes.
type capHarness struct {
	coord  *Coordinator
	nodes  []*capNode
	reb    *Rebalance
	audit  *telemetry.AuditLog
	budget cmp.Watts
}

func startCapFleet(t *testing.T, opts Options) *capHarness {
	t.Helper()
	h := &capHarness{reb: NewRebalance(), audit: telemetry.NewAuditLog(1024), budget: opts.Budget}
	var transports []Transport
	for i := 0; i < 3; i++ {
		n := &capNode{
			name:           fmt.Sprintf("node-%d", i),
			metric:         time.Duration(i+1) * time.Second,
			selfFenceAfter: 3,
		}
		h.nodes = append(h.nodes, n)
		transports = append(transports, n)
	}
	opts.Audit = h.audit
	coord, err := NewCoordinator(opts, transports...)
	if err != nil {
		t.Fatal(err)
	}
	h.coord = coord
	return h
}

// epoch runs one control epoch: partitioned nodes age their own detection
// clocks first (their time passes whether or not the coordinator reaches
// them), then the coordinator adjusts. Returns Σ physical draw after.
func (h *capHarness) epoch(t *testing.T) cmp.Watts {
	t.Helper()
	for _, n := range h.nodes {
		n.tick()
	}
	if _, err := h.coord.Adjust(h.reb); err != nil && !fault.IsDegraded(err) {
		t.Fatalf("Adjust: %v", err)
	}
	var sum cmp.Watts
	for _, n := range h.nodes {
		sum += n.physical()
	}
	return sum
}

// TestFleetStrictCapPhysicalDrawNeverExceedsBudget is the headline strict-cap
// chaos sequence: allocate, partition a node mid-run, and assert at EVERY
// control epoch through quarantine, hold, hold expiry, heal and re-admission
// that the sum of physically drawn watts never exceeds the cluster budget —
// even while the partitioned node is still burning its stale grant.
func TestFleetStrictCapPhysicalDrawNeverExceedsBudget(t *testing.T) {
	h := startCapFleet(t, Options{
		Budget: 100, Floor: 10, SuspectAfter: 2, StrictCap: true, // HoldEpochs defaults to SuspectAfter
	})

	check := func(step string) cmp.Watts {
		t.Helper()
		sum := h.epoch(t)
		if sum > h.budget+1e-9 {
			t.Fatalf("%s: Σ physical draw %.2fW over the %.2fW budget", step, float64(sum), float64(h.budget))
		}
		return sum
	}

	// Cold start: the pool is fully allocated and fully drawn.
	if sum := check("cold start"); sum < h.budget-1e-6 {
		t.Fatalf("cold start drew %.2fW of %.2fW", float64(sum), float64(h.budget))
	}
	stale := h.nodes[0].physical()
	if stale < 10-1e-9 {
		t.Fatalf("node-0 granted %.2fW, want at least the floor", float64(stale))
	}

	// Partition node-0. It keeps drawing its old grant for selfFenceAfter=3
	// epochs; the coordinator quarantines it after SuspectAfter=2 failures.
	h.nodes[0].partition(true)
	check("failure 1 (suspect)")
	check("reclaim epoch (quarantine)")

	// The reclaim epoch must have HELD the watts, not re-granted them: node-0
	// is still drawing them.
	if held := h.coord.HeldWatts(); !wattsNear(held, stale) {
		t.Fatalf("HeldWatts = %.2fW after reclaim, want the %.2fW stale grant", float64(held), float64(stale))
	}
	if h.nodes[0].physical() == 0 {
		t.Fatal("test premise broken: node-0 self-fenced before the hold mattered")
	}

	// Hold window: node-0 self-fences during it.
	check("hold epoch")
	if h.nodes[0].physical() != 0 {
		t.Fatal("node-0 did not self-fence after 3 silent epochs")
	}

	// Hold expiry: the watts return to the pool and the survivors absorb them.
	sum := check("hold expired, redistributed")
	if held := h.coord.HeldWatts(); held != 0 {
		t.Fatalf("HeldWatts = %.2fW after expiry, want 0", float64(held))
	}
	if sum < h.budget-1e-6 {
		t.Errorf("survivors drew %.2fW of %.2fW after the hold expired", float64(sum), float64(h.budget))
	}

	// Heal: budget-safe re-admission at the floor, still under the cap.
	h.nodes[0].partition(false)
	check("heal (re-admission)")
	if got := h.coord.Healths()["node-0"]; got != fault.Healthy {
		t.Fatalf("node-0 health %v after heal, want healthy", got)
	}
	check("post-heal epoch")

	// The audit trail shows the reclaim was a hold, not a plain reclaim.
	sawHeld := false
	for _, e := range h.audit.Events() {
		if strings.Contains(e.Detail, "quarantine reclaim (held)") {
			sawHeld = true
		}
	}
	if !sawHeld {
		t.Error("audit trail missing the held-reclaim record")
	}
}

// TestFleetFailOpenWindowWithoutStrictCap documents why StrictCap exists:
// with it off, the reclaim epoch re-grants the partitioned node's watts to
// the survivors while the node is still drawing them, and the cluster's
// physical draw overshoots the cap.
func TestFleetFailOpenWindowWithoutStrictCap(t *testing.T) {
	h := startCapFleet(t, Options{Budget: 100, Floor: 10, SuspectAfter: 2})

	h.epoch(t) // cold start
	stale := h.nodes[0].physical()
	h.nodes[0].partition(true)
	h.epoch(t)        // failure 1 → suspect
	sum := h.epoch(t) // failure 2 → quarantine, reclaim, immediate re-grant
	want := h.budget + stale
	if sum < want-1e-6 {
		t.Fatalf("fail-open overshoot not observed: Σ physical %.2fW, want %.2fW (budget + stale grant)",
			float64(sum), float64(want))
	}
	if held := h.coord.HeldWatts(); held != 0 {
		t.Fatalf("HeldWatts = %.2fW with StrictCap off, want 0", float64(held))
	}
}

// TestFleetStrictCapReleasesHoldOnReadmission: a hold outlives its node's
// quarantine when the node heals quickly — re-admission proves the node
// accepted a fresh fenced grant and stopped drawing the old one, so the hold
// is released early instead of idling watts for the full window.
func TestFleetStrictCapReleasesHoldOnReadmission(t *testing.T) {
	h := startCapFleet(t, Options{
		Budget: 100, Floor: 10, SuspectAfter: 2, StrictCap: true, HoldEpochs: 50,
	})

	h.epoch(t) // cold start
	h.nodes[0].partition(true)
	h.epoch(t) // suspect
	h.epoch(t) // quarantine + hold
	if held := h.coord.HeldWatts(); held <= 0 {
		t.Fatal("no hold created at the reclaim epoch")
	}

	// Heal well before the 50-epoch hold would expire.
	h.nodes[0].partition(false)
	h.epoch(t) // re-admission releases the hold
	if got := h.coord.Healths()["node-0"]; got != fault.Healthy {
		t.Fatalf("node-0 health %v after heal, want healthy", got)
	}
	if held := h.coord.HeldWatts(); held != 0 {
		t.Fatalf("HeldWatts = %.2fW after re-admission, want 0 (released early)", float64(held))
	}

	// With the hold gone the pool is whole again: the next epoch allocates
	// the full budget.
	sum := h.epoch(t)
	if sum < h.budget-1e-6 {
		t.Errorf("pool still short after release: Σ physical %.2fW of %.2fW", float64(sum), float64(h.budget))
	}
	if sum > h.budget+1e-9 {
		t.Errorf("Σ physical %.2fW over budget", float64(sum))
	}
}
