package fleet

import (
	"fmt"

	"powerchief/internal/rpc"
)

// RPCNode is the Transport over internal/rpc: one client connection to a
// NodeService. A broken connection is redialed before the next exchange —
// the probe path by which a quarantined node's recovery is detected — and
// every call runs under the client's CallTimeout so a hung node costs one
// deadline, not a stuck control epoch.
type RPCNode struct {
	name string
	c    *rpc.Client
}

// DialNode connects to a node service and learns its identity. Client
// options should set CallTimeout (and DialTimeout) so node death converts
// into bounded heartbeat failures.
func DialNode(addr string, opts rpc.ClientOptions) (*RPCNode, error) {
	c, err := rpc.DialOptions(addr, opts)
	if err != nil {
		return nil, err
	}
	var info NodeInfo
	if err := c.Call(MethodNodeInfo, nil, &info); err != nil {
		c.Close()
		return nil, fmt.Errorf("fleet: identifying node at %s: %w", addr, err)
	}
	if info.Node == "" {
		c.Close()
		return nil, fmt.Errorf("fleet: node at %s has no name", addr)
	}
	return &RPCNode{name: info.Node, c: c}, nil
}

// Name implements Transport.
func (n *RPCNode) Name() string { return n.name }

// redialIfBroken restores a failed connection so the next call probes the
// node instead of failing fast forever on a stale socket.
func (n *RPCNode) redialIfBroken() error {
	if n.c.Broken() {
		return n.c.Redial()
	}
	return nil
}

// Report implements Transport.
func (n *RPCNode) Report() (Report, error) {
	if err := n.redialIfBroken(); err != nil {
		return Report{}, err
	}
	var rep Report
	if err := n.c.Call(MethodNodeReport, nil, &rep); err != nil {
		return Report{}, err
	}
	return rep, nil
}

// Grant implements Transport.
func (n *RPCNode) Grant(g Grant) error {
	if err := n.redialIfBroken(); err != nil {
		return err
	}
	return n.c.Call(MethodNodeGrant, g, nil)
}

// Close tears the connection down.
func (n *RPCNode) Close() error { return n.c.Close() }
