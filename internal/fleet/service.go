package fleet

import (
	"fmt"
	"math"
	"sync"
	"time"

	"powerchief/internal/arbiter"
	"powerchief/internal/cmp"
	"powerchief/internal/fault"
	"powerchief/internal/rpc"
	"powerchief/internal/stats"
)

// Backend is the node-local system a NodeService fronts: whatever runs the
// node's pipeline and can report its bottleneck metric and re-set its local
// power budget. live.Cluster's SetBudget satisfies the actuation half;
// SynthBackend is the self-contained implementation used by cmd/nodesvc and
// the examples.
type Backend interface {
	// Metric returns the node's bottleneck metric (Equation 1 of its slowest
	// stage).
	Metric() time.Duration
	// Draw returns the node's current power draw.
	Draw() cmp.Watts
	// Budget returns the node's current local budget.
	Budget() cmp.Watts
	// SetBudget re-grants the node's local budget, shedding load first if
	// the new budget is below the current draw.
	SetBudget(cmp.Watts) error
}

// StageReporter is the optional Backend extension for nodes that can break
// their bottleneck metric down per stage. A NodeService forwards the
// breakdown in its heartbeat Reports (omitempty on the wire), letting the
// coordinator's arbiter weight by marginal benefit; scalar-only backends
// simply never populate the field.
type StageReporter interface {
	// StageMetrics returns the per-stage Equation 1 expected delays behind
	// Metric, bottleneck included.
	StageMetrics() []arbiter.StageMetric
}

// NodeService serves the fleet wire protocol for one node. It enforces the
// grant half of epoch fencing: a grant whose epoch is behind the last
// accepted one comes from a superseded coordinator term and is rejected with
// fault.ErrStaleEpoch (which round-trips over the wire as a sentinel).
type NodeService struct {
	name    string
	backend Backend
	srv     *rpc.Server

	mu     sync.Mutex
	epoch  uint64
	grants uint64

	// ingest accumulates node-local completion statistics for delta-batched
	// shipping on the heartbeat; nil until EnableIngest. start anchors the
	// accumulator's virtual clock.
	ingest *stats.DeltaAccumulator
	start  time.Time
}

// NewNodeService builds a service for one named node.
func NewNodeService(name string, backend Backend) (*NodeService, error) {
	if name == "" {
		return nil, fmt.Errorf("fleet: node service needs a name")
	}
	if backend == nil {
		return nil, fmt.Errorf("fleet: node service needs a backend")
	}
	s := &NodeService{name: name, backend: backend, srv: rpc.NewServer()}
	rpc.HandleFunc(s.srv, MethodNodeInfo, func(struct{}) (NodeInfo, error) {
		return NodeInfo{Node: s.name}, nil
	})
	rpc.HandleFunc(s.srv, MethodNodeReport, func(struct{}) (Report, error) {
		s.mu.Lock()
		epoch := s.epoch
		acc := s.ingest
		start := s.start
		s.mu.Unlock()
		rep := Report{
			Node:   s.name,
			Epoch:  epoch,
			Metric: s.backend.Metric(),
			Draw:   s.backend.Draw(),
			Budget: s.backend.Budget(),
		}
		if sr, ok := s.backend.(StageReporter); ok {
			rep.Stages = sr.StageMetrics()
		}
		if acc != nil {
			// The heartbeat is the delta transport: ship everything folded
			// since the last report. A report lost in flight loses at most
			// one heartbeat window of statistics — the coordinator's
			// sequence-gap counter records it.
			rep.Ingest = acc.Flush(time.Since(start))
		}
		return rep, nil
	})
	rpc.HandleFunc(s.srv, MethodNodeGrant, func(g Grant) (struct{}, error) {
		s.mu.Lock()
		if g.Epoch < s.epoch {
			last := s.epoch
			s.mu.Unlock()
			return struct{}{}, fmt.Errorf("fleet: grant epoch %d behind accepted %d: %w", g.Epoch, last, fault.ErrStaleEpoch)
		}
		s.mu.Unlock()
		if err := s.backend.SetBudget(g.Watts); err != nil {
			return struct{}{}, err
		}
		s.mu.Lock()
		if g.Epoch > s.epoch {
			s.epoch = g.Epoch
		}
		s.grants++
		s.mu.Unlock()
		return struct{}{}, nil
	})
	return s, nil
}

// Listen starts serving on addr and returns the bound address.
func (s *NodeService) Listen(addr string) (string, error) { return s.srv.Listen(addr) }

// EnableIngest arms delta-batched statistics ingest: node-local completions
// folded through Observe/ObserveRecord are batched and shipped on the next
// heartbeat report (zeros apply the stats defaults). The batch threshold
// only bounds memory here — the flush cadence is the heartbeat.
func (s *NodeService) EnableIngest(batch int, interval time.Duration) {
	s.mu.Lock()
	s.ingest = stats.NewDeltaAccumulator(batch, interval)
	s.start = time.Now()
	s.mu.Unlock()
}

// Observe folds one node-local completed query's end-to-end latency into
// the pending delta. A no-op until EnableIngest.
func (s *NodeService) Observe(latency time.Duration) {
	s.mu.Lock()
	acc := s.ingest
	start := s.start
	s.mu.Unlock()
	if acc != nil {
		acc.FoldQuery(time.Since(start), latency)
	}
}

// ObserveRecord folds one per-instance latency record into the pending
// delta. A no-op until EnableIngest.
func (s *NodeService) ObserveRecord(instance, stage string, queuing, serving time.Duration) {
	s.mu.Lock()
	acc := s.ingest
	start := s.start
	s.mu.Unlock()
	if acc != nil {
		acc.FoldRecord(time.Since(start), instance, stage, queuing, serving)
	}
}

// IngestPending reports the unflushed query count (telemetry).
func (s *NodeService) IngestPending() uint64 {
	s.mu.Lock()
	acc := s.ingest
	s.mu.Unlock()
	if acc == nil {
		return 0
	}
	q, _ := acc.Pending()
	return q
}

// Epoch returns the last accepted grant epoch.
func (s *NodeService) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Grants counts accepted grants.
func (s *NodeService) Grants() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.grants
}

// Close stops the service.
func (s *NodeService) Close() error { return s.srv.Close() }

// SynthBackend is a deterministic synthetic node: a fixed work intensity
// whose bottleneck metric shrinks as the granted budget grows. It stands in
// for a full per-node pipeline in cmd/nodesvc, the examples and the chaos
// tests, keeping the fleet layer testable without spawning one live cluster
// per node.
type SynthBackend struct {
	mu     sync.Mutex
	load   float64
	budget cmp.Watts
}

// NewSynthBackend builds a synthetic node with the given work intensity
// (load ≥ 0; 1.0 is one saturated max-level core's worth of work) and
// initial local budget.
func NewSynthBackend(load float64, budget cmp.Watts) *SynthBackend {
	if load < 0 {
		load = 0
	}
	if budget < 0 {
		budget = 0
	}
	return &SynthBackend{load: load, budget: budget}
}

// SetLoad changes the work intensity.
func (b *SynthBackend) SetLoad(load float64) {
	b.mu.Lock()
	if load >= 0 {
		b.load = load
	}
	b.mu.Unlock()
}

// Metric implements Backend: expected bottleneck delay proportional to load
// over watts — more budget, faster node.
func (b *SynthBackend) Metric() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return synthMetric(b.load, b.budget)
}

// synthMetric is the shared deterministic metric model (SimNode uses the
// same one so DES and RPC fleets weight nodes identically).
func synthMetric(load float64, budget cmp.Watts) time.Duration {
	w := float64(budget)
	if w < 1 {
		w = 1
	}
	return time.Duration(load / w * float64(time.Second))
}

// synthStages is the deterministic per-stage breakdown behind synthMetric: a
// fast ingress stage and the compute bottleneck. SimNode and SynthBackend
// share it so DES and RPC fleets forward identical breakdowns.
func synthStages(load float64, budget cmp.Watts) []arbiter.StageMetric {
	m := synthMetric(load, budget)
	return []arbiter.StageMetric{
		{Stage: "ingress", Metric: m * 2 / 5},
		{Stage: "compute", Metric: m},
	}
}

// StageMetrics implements StageReporter.
func (b *SynthBackend) StageMetrics() []arbiter.StageMetric {
	b.mu.Lock()
	defer b.mu.Unlock()
	return synthStages(b.load, b.budget)
}

// Draw implements Backend: the node consumes what its load needs, capped by
// the granted budget.
func (b *SynthBackend) Draw() cmp.Watts {
	b.mu.Lock()
	defer b.mu.Unlock()
	return cmp.Watts(math.Min(float64(b.budget), b.load*10))
}

// Budget implements Backend.
func (b *SynthBackend) Budget() cmp.Watts {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.budget
}

// SetBudget implements Backend. A synthetic node can always shed to any
// non-negative budget.
func (b *SynthBackend) SetBudget(w cmp.Watts) error {
	if w < 0 {
		return fmt.Errorf("fleet: negative budget %.2fW", float64(w))
	}
	b.mu.Lock()
	b.budget = w
	b.mu.Unlock()
	return nil
}
