package fleet

import (
	"fmt"
	"math"
	"sort"
	"time"

	"powerchief/internal/arbiter"
	"powerchief/internal/cmp"
	"powerchief/internal/controlplane"
	"powerchief/internal/sim"
)

// ArbiterArtifactKind tags the ArbiterBench JSON artifact for
// `powerbench cmp` dispatch.
const ArbiterArtifactKind = "arbiter"

// ArbiterBenchParams scripts the skewed-bottleneck fleet scenario racing
// arbiter weighting strategies against each other. Every node runs a
// two-stage pipeline: an ingress stage at a fixed reference speed (watts
// cannot help it) and a compute stage whose delay scales inversely with the
// granted budget. The skew fraction spreads the fleet from concentrated
// bottlenecks (tiny ingress, all delay in compute — watts keep paying off)
// to balanced pipelines (ingress as slow as compute — watts saturate once
// compute catches up to the fixed stage). A breakdown-aware strategy
// (arbiter.Marginal) sees the saturation through the per-stage protrusion
// and redirects watts to nodes still improvable; Proportional keeps feeding
// saturated nodes by their absolute slowness.
type ArbiterBenchParams struct {
	Nodes int `json:"nodes"`
	// Budget and Floor configure the coordinator ledger.
	Budget cmp.Watts `json:"budget_watts"`
	Floor  cmp.Watts `json:"floor_watts"`
	// RefWatts is the fixed effective wattage of the unboostable ingress
	// stage: a node with skew fraction f saturates once its grant reaches
	// RefWatts/f.
	RefWatts cmp.Watts     `json:"ref_watts"`
	Interval time.Duration `json:"interval_ns"`
	Duration time.Duration `json:"duration_ns"`
	// Warmup excludes the initial convergence transient from the scores.
	Warmup time.Duration `json:"warmup_ns"`
	// Strategies are raced in order; the first is the comparison baseline.
	Strategies []string `json:"strategies"`
}

// DefaultArbiterBenchParams is the recorded benchmark scenario.
func DefaultArbiterBenchParams() ArbiterBenchParams {
	return ArbiterBenchParams{
		Nodes:      60,
		Budget:     780,
		Floor:      10,
		RefWatts:   10,
		Interval:   time.Second,
		Duration:   120 * time.Second,
		Warmup:     30 * time.Second,
		Strategies: []string{"proportional", "marginal"},
	}
}

// ArbiterStrategyResult summarizes one strategy's run over two
// distributions, both per node per post-warmup sample:
//
//   - the absolute bottleneck delay (Equation 1 worst stage) — nodes whose
//     fixed ingress stage dominates pin this at a floor no allocation can
//     buy down, so fleets with heavy balanced pipelines tie here;
//   - the boostable delay, max(compute − ingress, 0) — the part of the
//     bottleneck the granted watts can still remove, i.e. the
//     responsiveness actually under the arbiter's control.
type ArbiterStrategyResult struct {
	Strategy string  `json:"strategy"`
	Samples  int     `json:"samples"`
	MeanMS   float64 `json:"mean_ms"`
	P99MS    float64 `json:"p99_ms"`
	MaxMS    float64 `json:"max_ms"`
	// WorstNodeMeanMS averages the per-sample fleet-worst delay — the
	// steady-state cluster tail the strategies compete on.
	WorstNodeMeanMS float64 `json:"worst_node_mean_ms"`
	// BoostMeanMS / BoostP99MS / BoostMaxMS summarize the boostable delay.
	BoostMeanMS float64 `json:"boost_mean_ms"`
	BoostP99MS  float64 `json:"boost_p99_ms"`
	BoostMaxMS  float64 `json:"boost_max_ms"`
}

// ArbiterBench is the recorded benchmark artifact
// (results/BENCH_arbiter.json), JSON-stable: same params, same bytes.
type ArbiterBench struct {
	Kind    string                  `json:"kind"`
	Params  ArbiterBenchParams      `json:"params"`
	Results []ArbiterStrategyResult `json:"results"`
	// P99ImprovementX is baseline boostable-p99 / last-strategy
	// boostable-p99: how much better the last strategy converts the budget
	// into removing removable delay than the first, baseline strategy.
	P99ImprovementX float64 `json:"p99_improvement_x"`
}

// arbiterBenchNode is the deterministic skewed-bottleneck Transport: ingress
// delay frac·load/RefWatts (fixed — watts cannot buy it down), compute delay
// load/granted. The reported metric is the worst stage, with the per-stage
// breakdown attached so breakdown-aware strategies can see how far the
// bottleneck protrudes.
type arbiterBenchNode struct {
	name       string
	load, frac float64
	ref        cmp.Watts

	budget cmp.Watts
	epoch  uint64
}

func (n *arbiterBenchNode) ingress() time.Duration {
	return time.Duration(n.frac * n.load / float64(n.ref) * float64(time.Second))
}

func (n *arbiterBenchNode) compute() time.Duration {
	w := math.Max(float64(n.budget), 1)
	return time.Duration(n.load / w * float64(time.Second))
}

// bottleneck is the node's Equation 1 worst-stage delay — both the reported
// metric and the responsiveness measure the benchmark scores.
func (n *arbiterBenchNode) bottleneck() time.Duration {
	if in := n.ingress(); in > n.compute() {
		return in
	}
	return n.compute()
}

// Name implements Transport.
func (n *arbiterBenchNode) Name() string { return n.name }

// Report implements Transport.
func (n *arbiterBenchNode) Report() (Report, error) {
	return Report{
		Node:   n.name,
		Epoch:  n.epoch,
		Metric: n.bottleneck(),
		Draw:   n.budget,
		Budget: n.budget,
		Stages: []arbiter.StageMetric{
			{Stage: "ingress", Metric: n.ingress()},
			{Stage: "compute", Metric: n.compute()},
		},
	}, nil
}

// Grant implements Transport.
func (n *arbiterBenchNode) Grant(g Grant) error {
	if g.Epoch < n.epoch {
		return fmt.Errorf("arbiterbench: grant epoch %d behind accepted %d", g.Epoch, n.epoch)
	}
	n.epoch = g.Epoch
	n.budget = g.Watts
	return nil
}

// strategyByName resolves the raced weighting strategies.
func strategyByName(name string) (arbiter.Strategy, error) {
	switch name {
	case "proportional":
		return arbiter.Proportional{}, nil
	case "marginal":
		return arbiter.Marginal{}, nil
	case "fairness":
		return arbiter.Fairness{Alpha: 2}, nil
	default:
		return nil, fmt.Errorf("fleet: unknown arbiter strategy %q (have proportional, marginal, fairness)", name)
	}
}

// RunArbiterBench races each strategy over its own fresh copy of the
// skewed-bottleneck fleet in virtual time and records the bottleneck-delay
// distributions. Fully deterministic: same params, same artifact bytes.
func RunArbiterBench(p ArbiterBenchParams) (*ArbiterBench, error) {
	if p.Nodes <= 0 || p.Interval <= 0 || p.Duration <= 0 {
		return nil, fmt.Errorf("fleet: arbiter bench needs nodes, an interval and a duration")
	}
	if len(p.Strategies) == 0 {
		return nil, fmt.Errorf("fleet: arbiter bench needs at least one strategy")
	}
	out := &ArbiterBench{Kind: ArbiterArtifactKind, Params: p}
	for _, name := range p.Strategies {
		strat, err := strategyByName(name)
		if err != nil {
			return nil, err
		}
		res, err := runArbiterStrategy(p, name, strat)
		if err != nil {
			return nil, err
		}
		out.Results = append(out.Results, res)
	}
	if n := len(out.Results); n > 1 && out.Results[n-1].BoostP99MS > 0 {
		out.P99ImprovementX = out.Results[0].BoostP99MS / out.Results[n-1].BoostP99MS
	}
	return out, nil
}

// runArbiterStrategy runs one strategy over a fresh fleet. The adjust loop
// registers on the engine before the sampler, so at equal timestamps each
// sample observes the post-adjust grants — the same determinism contract
// RunFleetSim rides on.
func runArbiterStrategy(p ArbiterBenchParams, name string, strat arbiter.Strategy) (ArbiterStrategyResult, error) {
	eng := sim.NewEngine()
	nodes := make([]*arbiterBenchNode, p.Nodes)
	transports := make([]Transport, p.Nodes)
	// A fixed load spread crossed with a skew spread: every load class
	// appears at every skew fraction, so the strategies differ only in how
	// they read the breakdown, not in which loads they face.
	fracs := []float64{0.05, 0.35, 0.65, 1.0}
	for i := range nodes {
		n := &arbiterBenchNode{
			name: fmt.Sprintf("node-%03d", i),
			load: 1 + float64(i%5)*0.5,
			frac: fracs[i%len(fracs)],
			ref:  p.RefWatts,
		}
		nodes[i] = n
		transports[i] = n
	}
	coord, err := NewCoordinator(Options{
		Budget: p.Budget,
		Floor:  p.Floor,
		Now:    eng.Now,
	}, transports...)
	if err != nil {
		return ArbiterStrategyResult{}, err
	}
	loop, err := controlplane.Start(controlplane.SimClock(eng), coord, controlplane.Options{
		Policy:   NewRebalanceWith(strat),
		Interval: p.Interval,
	})
	if err != nil {
		return ArbiterStrategyResult{}, err
	}

	res := ArbiterStrategyResult{Strategy: name}
	var delays, boosts []float64
	var worstSum float64
	stopSample := eng.Every(p.Interval, func() {
		if eng.Now() < p.Warmup {
			return
		}
		worst := 0.0
		for _, n := range nodes {
			d := float64(n.bottleneck()) / float64(time.Millisecond)
			delays = append(delays, d)
			if d > worst {
				worst = d
			}
			b := float64(n.compute()-n.ingress()) / float64(time.Millisecond)
			if b < 0 {
				b = 0
			}
			boosts = append(boosts, b)
		}
		worstSum += worst
		res.Samples++
	})

	eng.RunUntil(p.Duration)
	stopSample()
	loop.Stop()

	if len(delays) > 0 {
		var sum float64
		for _, d := range delays {
			sum += d
		}
		res.MeanMS = sum / float64(len(delays))
		res.P99MS = quantileF(delays, 0.99)
		res.MaxMS = quantileF(delays, 1)
		res.WorstNodeMeanMS = worstSum / float64(res.Samples)
		var bsum float64
		for _, b := range boosts {
			bsum += b
		}
		res.BoostMeanMS = bsum / float64(len(boosts))
		res.BoostP99MS = quantileF(boosts, 0.99)
		res.BoostMaxMS = quantileF(boosts, 1)
	}
	return res, nil
}

// quantileF is the nearest-rank quantile over a sorted copy.
func quantileF(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
