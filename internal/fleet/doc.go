// Package fleet federates Command Centers: a coordinator owns a
// cluster-wide power budget and periodically re-grants per-node budgets from
// each node's reported bottleneck metric — Equation 1 aggregated one level
// up, so the node whose bottleneck stage is slowest attracts the most watts.
//
// The layer reuses the whole control stack one level up from stages:
//
//   - The Coordinator implements core.System where Draw() is the sum of
//     granted node budgets and Budget() the cluster cap, so the existing
//     Executor validates SetBudgetActions with the same budget replay that
//     guards DVFS plans — Σ granted ≤ cap holds at every intermediate state.
//   - Rebalance is a core.Planner: the decision is a pure plan (decreases
//     before increases), actuation goes through the validating, rolling-back
//     Executor, and every grant lands in the audit log as an EventSetBudget.
//   - The controlplane.Loop drives Adjust epochs, so the same coordinator
//     runs deterministically over sim.Engine virtual time (SimNode,
//     RunFleetSim) and over internal/rpc against real node processes
//     (RPCNode, NodeService).
//
// Robustness is the point of the layer. Nodes move through the shared
// fault.Health state machine on heartbeat deadlines (Healthy → Suspect →
// Down → Recovering → Healthy); a quarantined node's watts are reclaimed
// within one control epoch and redistributed to the survivors; re-admission
// is budget-safe (survivors are shaved down to make room for the floor grant
// before the returning node gets a watt); and every grant carries a fencing
// epoch so a healed partition's pre-quarantine reports are rejected instead
// of steering the allocation with stale state. See DESIGN.md §5h.
//
// Node statistics ride the heartbeat: a NodeService with EnableIngest folds
// local completions into a stats.DeltaAccumulator and ships the pending
// delta on each report — zero extra RPCs, staleness bounded by the
// heartbeat interval — and the coordinator merges every node's digest into
// one exact fleet-wide latency histogram (FleetLatency), applying the same
// epoch-fencing discipline to statistics as to the bottleneck metric. See
// DESIGN.md §5j.
package fleet
