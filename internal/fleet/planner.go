package fleet

import (
	"powerchief/internal/arbiter"
	"powerchief/internal/core"
	"powerchief/internal/telemetry"
)

// Rebalance is the fleet's redistribution policy: the level-agnostic
// arbiter.Planner applied at the cluster→node level with the proportional
// (feed-the-bottleneck) strategy. Every control epoch it computes per-node
// budget targets from the reported bottleneck metrics and emits a plan of
// SetBudgetActions — decreases before increases, so the executor's budget
// replay holds Σ granted ≤ cap at every intermediate state. Floors, pinned
// (freshly re-admitted) nodes, hysteresis with leftover redistribution and
// the feasibility scale-down all live in the shared planner; see
// internal/arbiter.
type Rebalance struct {
	inner *arbiter.Planner
	audit *telemetry.AuditLog
}

// NewRebalance builds the policy.
func NewRebalance() *Rebalance {
	return &Rebalance{inner: arbiter.New(arbiter.Proportional{}).WithName("fleet-rebalance")}
}

// NewRebalanceWith builds the policy over a custom weighting strategy —
// arbiter.Marginal weights by the per-stage Equation 1 breakdown nodes
// forward in their Reports, arbiter.Fairness divides FastCap-style.
func NewRebalanceWith(s arbiter.Strategy) *Rebalance {
	return &Rebalance{inner: arbiter.New(s).WithName("fleet-rebalance")}
}

// Name implements core.Policy.
func (*Rebalance) Name() string { return "fleet-rebalance" }

// SetAudit implements core.AuditSetter.
func (r *Rebalance) SetAudit(a *telemetry.AuditLog) {
	r.audit = a
	r.inner.SetAudit(a)
}

// Plan implements core.Planner. sys must be an arbiter.View (the
// Coordinator) or a ClusterView (adapted on the fly); anything else yields
// an empty plan.
func (r *Rebalance) Plan(sys core.System, stats core.StatsReader) (*core.ActionPlan, core.BoostOutcome) {
	if _, ok := sys.(arbiter.View); ok {
		return r.inner.Plan(sys, stats)
	}
	if cv, ok := sys.(ClusterView); ok {
		return r.inner.Plan(clusterLens{cv}, stats)
	}
	return &core.ActionPlan{}, core.BoostOutcome{Kind: core.BoostNone}
}

// Adjust implements core.Policy: plan, then actuate through the validating,
// rolling-back executor. A mid-plan grant failure (a node dying between the
// heartbeat and its grant) rolls the applied prefix back, so the ledger
// never straddles two allocations.
func (r *Rebalance) Adjust(sys core.System, agg *core.Aggregator) core.BoostOutcome {
	plan, out := r.Plan(sys, agg)
	res := core.Executor{Audit: r.audit}.Apply(sys, agg, plan)
	if res.Err != nil {
		return core.BoostOutcome{Kind: core.BoostNone}
	}
	return out
}

// clusterLens adapts a bare ClusterView (hand-built test clusters, foreign
// coordinators) to the arbiter's view: healthy nodes become members with no
// QoS target and unit fairness weight.
type clusterLens struct {
	ClusterView
}

// Members implements arbiter.View.
func (l clusterLens) Members() []arbiter.Member {
	nodes := l.HealthyNodes()
	out := make([]arbiter.Member, len(nodes))
	for i, n := range nodes {
		out[i] = arbiter.Member{
			Control:   n.Control,
			Granted:   n.Granted,
			Metric:    n.Metric,
			Pinned:    n.Pinned,
			Breakdown: n.Breakdown,
		}
	}
	return out
}

var _ core.Planner = (*Rebalance)(nil)
