package fleet

import (
	"powerchief/internal/core"
	"powerchief/internal/telemetry"

	"powerchief/internal/cmp"
)

// Rebalance is the fleet's redistribution policy, implemented as a
// core.Planner one level up from the stage policies: every control epoch it
// computes per-node budget targets from the reported bottleneck metrics and
// emits a plan of SetBudgetActions — decreases before increases, so the
// executor's budget replay holds Σ granted ≤ cap at every intermediate
// state.
//
// The target for each participating node is the floor plus a share of the
// remaining watts proportional to its bottleneck metric (Equation 1
// aggregated upward): the node whose slowest stage is slowest attracts the
// most power — the same "feed the bottleneck" rule PowerChief applies to
// stages, applied to nodes. Pinned (freshly re-admitted) nodes hold the
// floor until their cooldown expires; moves smaller than the hysteresis are
// suppressed, and any headroom left over after suppression is redistributed
// so no watts are stranded by the flap guard.
type Rebalance struct {
	audit *telemetry.AuditLog
}

// NewRebalance builds the policy.
func NewRebalance() *Rebalance { return &Rebalance{} }

// Name implements core.Policy.
func (*Rebalance) Name() string { return "fleet-rebalance" }

// SetAudit implements core.AuditSetter.
func (r *Rebalance) SetAudit(a *telemetry.AuditLog) { r.audit = a }

// Plan implements core.Planner. sys must be a ClusterView (the Coordinator);
// anything else yields an empty plan.
func (r *Rebalance) Plan(sys core.System, _ *core.Aggregator) (*core.ActionPlan, core.BoostOutcome) {
	none := core.BoostOutcome{Kind: core.BoostNone}
	cv, ok := sys.(ClusterView)
	if !ok {
		return &core.ActionPlan{}, none
	}
	nodes := cv.HealthyNodes()
	if len(nodes) == 0 {
		return &core.ActionPlan{}, none
	}
	floor, hyst := cv.Floor(), cv.Hysteresis()

	// The distributable pool: the cluster budget minus watts held outside
	// the healthy set (quarantined nodes keep their grant until the reclaim
	// pass takes it back).
	var healthyGranted cmp.Watts
	for _, n := range nodes {
		healthyGranted += n.Granted
	}
	avail := cv.Budget() - (cv.Draw() - healthyGranted)
	if avail < 0 {
		avail = 0
	}
	extra := avail - cmp.Watts(len(nodes))*floor
	if extra < 0 {
		extra = 0
	}

	// Metric-weighted targets: floor plus the bottleneck-proportional share
	// of the extra. Pinned nodes hold the floor.
	unpinned := 0
	var sumW float64
	weights := make([]float64, len(nodes))
	for i, n := range nodes {
		if n.Pinned {
			continue
		}
		unpinned++
		w := float64(n.Metric)
		if w < 0 {
			w = 0
		}
		weights[i] = w
		sumW += w
	}
	desired := make([]cmp.Watts, len(nodes))
	for i, n := range nodes {
		if n.Pinned {
			desired[i] = floor
			continue
		}
		var share float64
		if sumW > 0 {
			share = weights[i] / sumW
		} else if unpinned > 0 {
			share = 1 / float64(unpinned)
		}
		desired[i] = floor + cmp.Watts(float64(extra)*share)
	}

	// Hysteresis: a move smaller than the threshold keeps the current
	// grant, so metric noise does not flap watts between nodes.
	for i, n := range nodes {
		d := desired[i] - n.Granted
		if d < 0 {
			d = -d
		}
		if d <= hyst {
			desired[i] = n.Granted
		}
	}

	// Feasibility: hysteresis keeps can push the sum over the pool (a kept
	// grant above its computed target). Cut the increases proportionally —
	// the overshoot never exceeds their sum, since Σ granted ≤ pool held
	// before this epoch.
	var sum cmp.Watts
	for _, d := range desired {
		sum += d
	}
	if sum > avail {
		var incTotal cmp.Watts
		for i, n := range nodes {
			if desired[i] > n.Granted {
				incTotal += desired[i] - n.Granted
			}
		}
		if incTotal > 0 {
			scale := float64(sum-avail) / float64(incTotal)
			if scale > 1 {
				scale = 1
			}
			for i, n := range nodes {
				if desired[i] > n.Granted {
					desired[i] -= cmp.Watts(float64(desired[i]-n.Granted) * scale)
				}
			}
		}
	} else if left := avail - sum; left > 1e-9 && unpinned > 0 {
		// Keeps (or a shrunken fleet) left headroom unallocated. Spread it
		// equally over the unpinned nodes, overriding hysteresis: the flap
		// guard must never strand watts — after a 10-node kill the reclaimed
		// power lands on the survivors this epoch even when each node's
		// share is individually below the threshold.
		per := left / cmp.Watts(unpinned)
		for i, n := range nodes {
			if !n.Pinned {
				desired[i] += per
			}
		}
	}

	// Emit decreases first, then increases: the executor replays the budget
	// in plan order, so freeing watts before spending them keeps every
	// intermediate state under the cap.
	plan := &core.ActionPlan{}
	for i, n := range nodes {
		if desired[i] < n.Granted-1e-9 {
			plan.Actions = append(plan.Actions, &core.SetBudgetAction{
				Node: n.Control, From: n.Granted, To: desired[i], Reason: core.ReasonRebalance,
			})
		}
	}
	for i, n := range nodes {
		if desired[i] > n.Granted+1e-9 {
			plan.Actions = append(plan.Actions, &core.SetBudgetAction{
				Node: n.Control, From: n.Granted, To: desired[i], Reason: core.ReasonRebalance,
			})
		}
	}
	return plan, none
}

// Adjust implements core.Policy: plan, then actuate through the validating,
// rolling-back executor. A mid-plan grant failure (a node dying between the
// heartbeat and its grant) rolls the applied prefix back, so the ledger
// never straddles two allocations.
func (r *Rebalance) Adjust(sys core.System, agg *core.Aggregator) core.BoostOutcome {
	plan, out := r.Plan(sys, agg)
	res := core.Executor{Audit: r.audit}.Apply(sys, agg, plan)
	if res.Err != nil {
		return core.BoostOutcome{Kind: core.BoostNone}
	}
	return out
}

var _ core.Planner = (*Rebalance)(nil)
