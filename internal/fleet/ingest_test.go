package fleet

import (
	"fmt"
	"testing"
	"time"

	"powerchief/internal/rpc"
	"powerchief/internal/stats"
)

// TestFleetIngestHeartbeatCarriesDeltas drives node-local observations over
// real RPC heartbeats: deltas ride the reports, merge into the fleet-wide
// histogram, and no extra RPCs are spent on statistics.
func TestFleetIngestHeartbeatCarriesDeltas(t *testing.T) {
	var transports []Transport
	var svcs []*NodeService
	for i := 0; i < 3; i++ {
		svc, err := NewNodeService(fmt.Sprintf("node-%d", i), NewSynthBackend(1, 0))
		if err != nil {
			t.Fatal(err)
		}
		svc.EnableIngest(0, 0)
		addr, err := svc.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		node, err := DialNode(addr, rpc.ClientOptions{CallTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		svcs = append(svcs, svc)
		transports = append(transports, node)
		t.Cleanup(func() { node.Close(); svc.Close() })
	}
	coord, err := NewCoordinator(Options{Budget: 300, Floor: 10}, transports...)
	if err != nil {
		t.Fatal(err)
	}

	// Each node observes completions locally between heartbeats.
	const perNode = 50
	for ni, svc := range svcs {
		for i := 0; i < perNode; i++ {
			svc.Observe(time.Duration(ni+1) * 10 * time.Millisecond)
			svc.ObserveRecord(fmt.Sprintf("web-%d", ni), "web", time.Millisecond, 5*time.Millisecond)
		}
	}
	if pending := svcs[0].IngestPending(); pending != perNode {
		t.Fatalf("pending before heartbeat = %d, want %d", pending, perNode)
	}

	if _, err := coord.Adjust(NewRebalance()); err != nil {
		t.Fatal(err)
	}

	deltas, queries, gaps := coord.IngestCounts()
	if deltas != 3 || queries != 3*perNode || gaps != 0 {
		t.Fatalf("ingest counts = (%d, %d, %d), want (3, %d, 0)", deltas, queries, gaps, 3*perNode)
	}
	if pending := svcs[0].IngestPending(); pending != 0 {
		t.Fatalf("heartbeat left %d pending observations on the node", pending)
	}

	count, mean, p99, ok := coord.FleetLatency(0.99)
	if !ok || count != 3*perNode {
		t.Fatalf("fleet latency count = %d (ok=%v), want %d", count, ok, 3*perNode)
	}
	// Exact mean across 50×10ms + 50×20ms + 50×30ms = 20ms.
	if mean != 20*time.Millisecond {
		t.Fatalf("fleet mean = %v, want 20ms", mean)
	}
	if p99 < 20*time.Millisecond {
		t.Fatalf("fleet p99 = %v, implausibly low", p99)
	}

	// A second epoch with no observations ships nothing and breaks nothing.
	if _, err := coord.Adjust(NewRebalance()); err != nil {
		t.Fatal(err)
	}
	if d2, _, g2 := coord.IngestCounts(); d2 != 3 || g2 != 0 {
		t.Fatalf("idle heartbeat changed ingest counts: deltas=%d gaps=%d", d2, g2)
	}
}

// TestFleetIngestMatchesDirectMerge proves the heartbeat-merged fleet
// histogram equals a direct merge of every node's observations — the
// exactness argument one level up.
func TestFleetIngestMatchesDirectMerge(t *testing.T) {
	var transports []Transport
	direct := stats.NewBinHistogram()
	for i := 0; i < 2; i++ {
		svc, err := NewNodeService(fmt.Sprintf("node-%d", i), NewSynthBackend(1, 0))
		if err != nil {
			t.Fatal(err)
		}
		svc.EnableIngest(0, 0)
		addr, err := svc.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		node, err := DialNode(addr, rpc.ClientOptions{CallTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close(); svc.Close() })
		transports = append(transports, node)
		for j := 1; j <= 100; j++ {
			lat := time.Duration(j*(i+1)) * time.Millisecond
			svc.Observe(lat)
			direct.Observe(lat)
		}
	}
	coord, err := NewCoordinator(Options{Budget: 200, Floor: 10}, transports...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Adjust(NewRebalance()); err != nil {
		t.Fatal(err)
	}
	count, mean, p99, ok := coord.FleetLatency(0.99)
	if !ok {
		t.Fatal("no fleet latency after heartbeats")
	}
	if count != direct.Count() || mean != direct.Mean() || p99 != direct.Quantile(0.99) {
		t.Fatalf("fleet merge (n=%d mean=%v p99=%v) != direct (n=%d mean=%v p99=%v)",
			count, mean, p99, direct.Count(), direct.Mean(), direct.Quantile(0.99))
	}
}

// TestFleetIngestLegacyNodeInterop: a node without ingest enabled (an old
// binary's wire shape — no ingest key in its reports) coexists with
// delta-shipping nodes on one coordinator.
func TestFleetIngestLegacyNodeInterop(t *testing.T) {
	var transports []Transport
	for i := 0; i < 2; i++ {
		svc, err := NewNodeService(fmt.Sprintf("node-%d", i), NewSynthBackend(1, 0))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			svc.EnableIngest(0, 0)
			svc.Observe(15 * time.Millisecond)
		}
		addr, err := svc.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		node, err := DialNode(addr, rpc.ClientOptions{CallTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close(); svc.Close() })
		transports = append(transports, node)
	}
	coord, err := NewCoordinator(Options{Budget: 200, Floor: 10}, transports...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Adjust(NewRebalance()); err != nil {
		t.Fatal(err)
	}
	deltas, queries, _ := coord.IngestCounts()
	if deltas != 1 || queries != 1 {
		t.Fatalf("ingest counts = (%d, %d), want the one delta node's (1, 1)", deltas, queries)
	}
}
