package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"powerchief/internal/arbiter"
	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/fault"
	"powerchief/internal/telemetry"
)

// Options configures a Coordinator.
type Options struct {
	// Budget is the cluster-wide power budget (required).
	Budget cmp.Watts
	// Floor is the minimum grant a healthy node holds (required). It is the
	// re-admission grant, and n×Floor must fit the budget so every node can
	// in principle be healthy at once.
	Floor cmp.Watts
	// Hysteresis suppresses re-grants smaller than this, so metric noise
	// does not flap budgets between nodes (default Floor/4). It never strands
	// watts: headroom left over after hysteresis keeps is redistributed.
	Hysteresis cmp.Watts
	// SuspectAfter is the consecutive heartbeat failures that quarantine a
	// node (default 2).
	SuspectAfter int
	// CooldownEpochs pins a re-admitted node at the floor grant for this
	// many epochs before it competes for extra watts again (default 3) —
	// the guard against a flapping node repeatedly draining the pool.
	CooldownEpochs int
	// StrictCap closes the fail-open window around quarantine: watts
	// reclaimed from a quarantined node are held out of the distributable
	// pool for HoldEpochs control epochs before re-granting. A partitioned
	// node cannot see the reclamation — it keeps drawing its old grant until
	// its own partition detection self-fences it — so re-granting those
	// watts immediately can push the cluster's physical draw over the cap.
	// The hold keeps Σ physical draw ≤ budget through the heal, trading one
	// detection-timeout of throughput for the guarantee.
	StrictCap bool
	// HoldEpochs is how many control epochs a strict-cap hold lasts
	// (default SuspectAfter — the same number of epochs a silent node needs
	// to notice it has been cut off).
	HoldEpochs int
	// Now supplies audit timestamps (the DES engine's Now in simulation);
	// nil reads as zero.
	Now func() time.Duration
	// Audit, when set, receives the fleet decision trail.
	Audit *telemetry.AuditLog
}

func (o Options) withDefaults() Options {
	if o.Hysteresis <= 0 {
		o.Hysteresis = o.Floor / 4
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 2
	}
	if o.CooldownEpochs <= 0 {
		o.CooldownEpochs = 3
	}
	if o.HoldEpochs <= 0 {
		o.HoldEpochs = o.SuspectAfter
	}
	return o
}

// hold is one strict-cap quarantine hold: watts reclaimed from a node but
// kept out of the pool until the adjust epoch `until` (or until the node is
// re-admitted, which proves it accepted a fresh grant and stopped drawing
// the old one).
type hold struct {
	node  string
	watts cmp.Watts
	until uint64
}

// nodeState is the coordinator's ledger entry for one node. It implements
// core.NodeControl, so SetBudgetActions in a plan actuate straight through
// it — every grant leaves at a fresh fencing epoch and commits to the ledger
// only once the node accepted it.
type nodeState struct {
	c    *Coordinator
	t    Transport
	name string

	// All fields below are guarded by c.mu.
	health    fault.Health
	fails     int
	lastErr   error
	granted   cmp.Watts
	epoch     uint64 // fencing epoch of the last accepted grant
	metric    time.Duration
	breakdown []arbiter.StageMetric // per-stage Eq. 1 behind metric (optional)
	cooldown  int                   // epochs left pinned at the floor after re-admission
}

// Name implements core.NodeControl.
func (n *nodeState) Name() string { return n.name }

// Budget implements core.NodeControl: the grant the ledger holds.
func (n *nodeState) Budget() cmp.Watts {
	n.c.mu.Lock()
	defer n.c.mu.Unlock()
	return n.granted
}

// SetBudget implements core.NodeControl: deliver a grant at a fresh fencing
// epoch and commit it to the ledger only on acceptance. A delivery failure
// feeds the health state machine and propagates, so the executor rolls the
// plan's applied prefix back.
func (n *nodeState) SetBudget(w cmp.Watts) error {
	n.c.mu.Lock()
	n.c.epoch++
	e := n.c.epoch
	n.c.mu.Unlock()
	if err := n.t.Grant(Grant{Watts: w, Epoch: e}); err != nil {
		n.c.noteFailure(n, err)
		return err
	}
	n.c.mu.Lock()
	n.granted = w
	n.epoch = e
	n.c.mu.Unlock()
	n.c.noteSuccess(n)
	return nil
}

// NodeView is one healthy node as the rebalance planner sees it.
type NodeView struct {
	// Control actuates the node (emit it in SetBudgetActions).
	Control core.NodeControl
	// Granted is the node's current grant in the ledger.
	Granted cmp.Watts
	// Metric is the node's last fenced-and-accepted bottleneck metric.
	Metric time.Duration
	// Breakdown is the per-stage Equation 1 breakdown behind Metric, when
	// the node forwards one in its Reports; nil for scalar-only nodes.
	Breakdown []arbiter.StageMetric
	// Pinned marks a freshly re-admitted node still in cooldown: it holds
	// the floor and does not compete for extra watts.
	Pinned bool
}

// ClusterView is the planner's view of the coordinator: core.System for the
// budget arithmetic plus the per-node state the redistribution weighs.
type ClusterView interface {
	core.System
	// HealthyNodes returns the nodes participating in redistribution
	// (healthy and suspect), in stable registration order.
	HealthyNodes() []NodeView
	// Floor is the minimum per-node grant.
	Floor() cmp.Watts
	// Hysteresis is the minimum re-grant worth actuating.
	Hysteresis() cmp.Watts
}

// Coordinator owns a cluster-wide power budget and a ledger of per-node
// grants. It is the fleet-level twin of dist.Center: heartbeats feed the
// shared fault.Health state machine, quarantined nodes' watts are reclaimed
// within one epoch, re-admission is budget-safe, and epoch fencing rejects
// state from before a reclamation. It implements controlplane.Adjuster (so
// the shared Loop drives it over any Clock) and core.System one level up:
// Draw() is the sum of granted node budgets, Budget() the cluster cap.
type Coordinator struct {
	opts Options

	// adjustMu serializes control epochs (and the re-admissions inside
	// them); mu guards the ledger underneath.
	adjustMu sync.Mutex

	mu      sync.Mutex
	nodes   []*nodeState
	epoch   uint64 // global fencing epoch; every grant carries a fresh value
	adjusts uint64 // control epochs completed; strict-cap holds expire on it
	holds   []hold

	quarantines  atomic.Uint64
	readmissions atomic.Uint64
	fenced       atomic.Uint64

	// ingest merges heartbeat-carried node statistic deltas (see ingest.go).
	ingest fleetIngest
}

// NewCoordinator builds a coordinator over the given node transports. Nodes
// start healthy with a zero grant; the first control epoch raises them.
func NewCoordinator(opts Options, transports ...Transport) (*Coordinator, error) {
	if opts.Budget <= 0 {
		return nil, fmt.Errorf("fleet: coordinator needs a positive cluster budget")
	}
	if opts.Floor <= 0 {
		return nil, fmt.Errorf("fleet: coordinator needs a positive per-node floor")
	}
	if len(transports) == 0 {
		return nil, fmt.Errorf("fleet: coordinator needs at least one node")
	}
	opts = opts.withDefaults()
	if cmp.Watts(len(transports))*opts.Floor > opts.Budget+1e-9 {
		return nil, fmt.Errorf("fleet: %d floors of %.2fW exceed the %.2fW cluster budget",
			len(transports), float64(opts.Floor), float64(opts.Budget))
	}
	c := &Coordinator{opts: opts}
	names := make(map[string]bool)
	for _, t := range transports {
		name := t.Name()
		if name == "" {
			return nil, fmt.Errorf("fleet: node transport with empty name")
		}
		if names[name] {
			return nil, fmt.Errorf("fleet: duplicate node name %q", name)
		}
		names[name] = true
		c.nodes = append(c.nodes, &nodeState{c: c, t: t, name: name})
	}
	return c, nil
}

// now supplies audit timestamps.
func (c *Coordinator) now() time.Duration {
	if c.opts.Now != nil {
		return c.opts.Now()
	}
	return 0
}

// Adjust runs one fleet control epoch: heartbeat every node, reclaim watts
// stranded on freshly quarantined nodes, then hand the policy (normally
// Rebalance) the cluster view to redistribute. It implements
// controlplane.Adjuster; with every node quarantined it returns
// fault.ErrNoHealthyNodes, which the loop counts as a degraded epoch and
// keeps ticking through.
func (c *Coordinator) Adjust(policy core.Policy) (core.BoostOutcome, error) {
	c.adjustMu.Lock()
	defer c.adjustMu.Unlock()

	// Advance the control epoch and release strict-cap holds that have aged
	// out: a node silent this long has self-fenced, so its watts are free.
	c.mu.Lock()
	c.adjusts++
	c.expireHoldsLocked()
	c.mu.Unlock()

	// Heartbeat pass, stable order. Quarantined nodes are probed for
	// re-admission instead.
	for _, n := range c.nodes {
		c.mu.Lock()
		health := n.health
		c.mu.Unlock()
		if health == fault.Down || health == fault.Recovering {
			c.tryReadmit(n)
			continue
		}
		rep, err := n.t.Report()
		if err != nil {
			c.noteFailure(n, err)
			continue
		}
		c.mu.Lock()
		fencedRep := rep.Epoch != n.epoch
		granted := n.granted
		if !fencedRep {
			n.metric = rep.Metric
			n.breakdown = rep.Stages
			if n.cooldown > 0 {
				n.cooldown--
			}
		}
		c.mu.Unlock()
		if fencedRep {
			// The node answered but echoes a grant this ledger did not issue
			// last — a restarted node, or a grant lost in flight. The report
			// proves liveness; its metric is NOT ingested. Resynchronise by
			// re-pushing the ledger's grant at a fresh epoch.
			c.noteFenced(n, rep.Epoch)
			_ = n.SetBudget(granted)
			continue
		}
		if rep.Ingest != nil {
			c.foldIngest(n.name, rep.Ingest)
		}
		c.noteSuccess(n)
	}

	// Reclaim pass: watts stranded on quarantined nodes return to the pool
	// in the same epoch that quarantined them, and the global epoch is
	// bumped past the node's last grant so every report it produced before
	// the reclamation is fenced off.
	for _, n := range c.nodes {
		c.mu.Lock()
		if n.health != fault.Down || n.granted == 0 {
			c.mu.Unlock()
			continue
		}
		w := n.granted
		n.granted = 0
		c.epoch++
		n.epoch = c.epoch
		detail := "quarantine reclaim"
		if c.opts.StrictCap {
			// The node may still be drawing these watts; hold them out of the
			// pool until it has had time to self-fence.
			c.holds = append(c.holds, hold{node: n.name, watts: w, until: c.adjusts + uint64(c.opts.HoldEpochs)})
			detail = "quarantine reclaim (held)"
		}
		c.mu.Unlock()
		if c.opts.Audit.Enabled() {
			c.opts.Audit.Record(telemetry.Event{
				Time: c.now(), Kind: telemetry.EventSetBudget, Node: n.name,
				PrevWatts: float64(w), GrantedWatts: 0, Detail: detail,
			})
		}
	}

	healthy := 0
	c.mu.Lock()
	for _, n := range c.nodes {
		if n.health == fault.Healthy || n.health == fault.Suspect {
			healthy++
		}
	}
	c.mu.Unlock()
	if healthy == 0 {
		return core.BoostOutcome{}, fault.ErrNoHealthyNodes
	}
	return policy.Adjust(c, nil), nil
}

// tryReadmit probes a quarantined node and, when it answers, re-admits it
// budget-safely: survivors are shaved down — richest first, never below the
// floor — until the floor grant fits the headroom, and only then does the
// returning node get a watt. A node that answers with a pre-reclamation
// epoch is counted as fenced; the probe proves liveness, nothing more.
func (c *Coordinator) tryReadmit(n *nodeState) {
	rep, err := n.t.Report()
	if err != nil {
		c.mu.Lock()
		n.lastErr = err
		c.mu.Unlock()
		return // still down
	}
	c.mu.Lock()
	stale := rep.Epoch != n.epoch
	c.mu.Unlock()
	if stale {
		c.noteFenced(n, rep.Epoch)
	}
	c.setHealth(n, fault.Recovering)

	floor := c.opts.Floor
	for attempts := 0; ; attempts++ {
		c.mu.Lock()
		headroom := c.opts.Budget - c.drawLocked()
		if headroom+1e-9 >= floor {
			c.mu.Unlock()
			break
		}
		var donor *nodeState
		if attempts <= len(c.nodes) {
			for _, m := range c.nodes {
				if m == n || (m.health != fault.Healthy && m.health != fault.Suspect) {
					continue
				}
				if m.granted > floor+1e-9 && (donor == nil || m.granted > donor.granted) {
					donor = m
				}
			}
		}
		if donor == nil {
			c.mu.Unlock()
			return // no room this epoch; stay Recovering, retry next epoch
		}
		target := donor.granted - (floor - headroom)
		if target < floor {
			target = floor
		}
		c.mu.Unlock()
		if err := donor.SetBudget(target); err != nil {
			continue // the donor just failed its own grant; try another
		}
	}

	if err := n.SetBudget(floor); err != nil {
		return // noteFailure inside SetBudget sent it back to Down
	}
	c.mu.Lock()
	n.cooldown = c.opts.CooldownEpochs
	if !stale {
		n.metric = rep.Metric
	}
	// The node just accepted a fresh fenced grant, so it stopped drawing
	// whatever it held before quarantine: its strict-cap hold can go.
	c.releaseHoldsLocked(n.name)
	c.mu.Unlock()
	c.setHealth(n, fault.Healthy)
}

// drawLocked sums the ledger plus any strict-cap holds; caller holds c.mu.
// Counting held watts as draw is what keeps them out of the planner's pool
// (avail = Budget − (Draw − healthyGranted)) without the planner knowing
// holds exist.
func (c *Coordinator) drawLocked() cmp.Watts {
	var sum cmp.Watts
	for _, n := range c.nodes {
		sum += n.granted
	}
	return sum + c.heldLocked()
}

// heldLocked sums live strict-cap holds; caller holds c.mu.
func (c *Coordinator) heldLocked() cmp.Watts {
	var sum cmp.Watts
	for _, h := range c.holds {
		sum += h.watts
	}
	return sum
}

// expireHoldsLocked drops holds whose epoch has passed; caller holds c.mu.
func (c *Coordinator) expireHoldsLocked() {
	kept := c.holds[:0]
	for _, h := range c.holds {
		if h.until > c.adjusts {
			kept = append(kept, h)
		}
	}
	c.holds = kept
}

// releaseHoldsLocked frees every hold on one node — called when the node is
// re-admitted, which proves it accepted a fenced grant and no longer draws
// the reclaimed watts. Caller holds c.mu.
func (c *Coordinator) releaseHoldsLocked(name string) {
	kept := c.holds[:0]
	for _, h := range c.holds {
		if h.node != name {
			kept = append(kept, h)
		}
	}
	c.holds = kept
}

// noteFailure feeds one failed exchange into the health state machine.
func (c *Coordinator) noteFailure(n *nodeState, err error) {
	c.mu.Lock()
	n.lastErr = err
	cur := n.health
	switch cur {
	case fault.Healthy:
		n.fails = 1
	case fault.Suspect:
		n.fails++
	}
	fails := n.fails
	c.mu.Unlock()
	switch cur {
	case fault.Healthy, fault.Suspect:
		if fails >= c.opts.SuspectAfter {
			c.setHealth(n, fault.Down)
		} else if cur == fault.Healthy {
			c.setHealth(n, fault.Suspect)
		}
	case fault.Recovering:
		c.setHealth(n, fault.Down)
	}
}

// noteSuccess clears a suspect node; Down and Recovering transitions belong
// to the re-admission path.
func (c *Coordinator) noteSuccess(n *nodeState) {
	c.mu.Lock()
	suspect := n.health == fault.Suspect
	if suspect {
		n.fails = 0
	}
	c.mu.Unlock()
	if suspect {
		c.setHealth(n, fault.Healthy)
	}
}

// setHealth transitions one node, maintaining the quarantine counters and
// the audit trail. Counters move with the state machine whether or not
// auditing is enabled.
func (c *Coordinator) setHealth(n *nodeState, to fault.Health) {
	c.mu.Lock()
	from := n.health
	if from == to {
		c.mu.Unlock()
		return
	}
	n.health = to
	granted := n.granted
	lastErr := n.lastErr
	c.mu.Unlock()

	var kind telemetry.EventKind
	switch to {
	case fault.Suspect:
		kind = telemetry.EventNodeSuspect
	case fault.Down:
		c.quarantines.Add(1)
		kind = telemetry.EventNodeQuarantine
	case fault.Recovering:
		kind = telemetry.EventNodeRecovering
	case fault.Healthy:
		if from != fault.Recovering {
			return // suspect cleared; not worth an event
		}
		c.readmissions.Add(1)
		kind = telemetry.EventNodeReadmit
	default:
		return
	}
	if !c.opts.Audit.Enabled() {
		return
	}
	e := telemetry.Event{
		Time: c.now(), Kind: kind, Node: n.name,
		GrantedWatts: float64(granted),
		Detail:       fmt.Sprintf("%s→%s", from, to),
	}
	if lastErr != nil && to != fault.Healthy {
		e.Err = lastErr.Error()
	}
	c.opts.Audit.Record(e)
}

// noteFenced counts one stale-epoch report or probe.
func (c *Coordinator) noteFenced(n *nodeState, repEpoch uint64) {
	c.fenced.Add(1)
	if !c.opts.Audit.Enabled() {
		return
	}
	c.mu.Lock()
	want := n.epoch
	c.mu.Unlock()
	c.opts.Audit.Record(telemetry.Event{
		Time: c.now(), Kind: telemetry.EventNodeFenced, Node: n.name,
		Detail: fmt.Sprintf("report epoch %d, ledger epoch %d", repEpoch, want),
	})
}

// ---- core.System (the cluster as a power domain) ----

// Now implements core.System.
func (c *Coordinator) Now() time.Duration { return c.now() }

// PowerModel implements core.System. The fleet layer never converts watts
// to levels; the default model only anchors FreeCores.
func (c *Coordinator) PowerModel() cmp.PowerModel { return cmp.DefaultModel() }

// Budget implements core.System: the cluster cap.
func (c *Coordinator) Budget() cmp.Watts { return c.opts.Budget }

// Draw implements core.System: the sum of granted node budgets — including
// quarantined nodes that have not been reclaimed yet, since a partitioned
// node may still be consuming its grant, plus strict-cap holds on watts
// reclaimed but not yet safe to re-grant.
func (c *Coordinator) Draw() cmp.Watts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drawLocked()
}

// Headroom implements core.System.
func (c *Coordinator) Headroom() cmp.Watts { return c.opts.Budget - c.Draw() }

// FreeCores implements core.System (nominal: headroom in minimum-power
// cores; the fleet planner never clones).
func (c *Coordinator) FreeCores() int {
	min := c.PowerModel().MinPower()
	if min <= 0 {
		return 0
	}
	return int(c.Headroom() / min)
}

// Stages implements core.System; the fleet has no stage view.
func (c *Coordinator) Stages() []core.StageControl { return nil }

// Quarantined implements core.System; node quarantine is exposed through
// Healths, not the stage view.
func (c *Coordinator) Quarantined() []core.StageControl { return nil }

// ---- ClusterView (the planner's state) ----

// HealthyNodes implements ClusterView.
func (c *Coordinator) HealthyNodes() []NodeView {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []NodeView
	for _, n := range c.nodes {
		if n.health != fault.Healthy && n.health != fault.Suspect {
			continue
		}
		out = append(out, NodeView{Control: n, Granted: n.granted, Metric: n.metric, Breakdown: n.breakdown, Pinned: n.cooldown > 0})
	}
	return out
}

// Members implements arbiter.View: the healthy nodes as budget-arbitration
// members with no QoS target and unit fairness weight — cluster→node is the
// same redistribution shape as chip→app, one level up.
func (c *Coordinator) Members() []arbiter.Member {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []arbiter.Member
	for _, n := range c.nodes {
		if n.health != fault.Healthy && n.health != fault.Suspect {
			continue
		}
		out = append(out, arbiter.Member{
			Control:   n,
			Granted:   n.granted,
			Metric:    n.metric,
			Breakdown: n.breakdown,
			Pinned:    n.cooldown > 0,
		})
	}
	return out
}

// Floor implements ClusterView.
func (c *Coordinator) Floor() cmp.Watts { return c.opts.Floor }

// Hysteresis implements ClusterView.
func (c *Coordinator) Hysteresis() cmp.Watts { return c.opts.Hysteresis }

// ---- introspection ----

// Healths snapshots every node's health state.
func (c *Coordinator) Healths() map[string]fault.Health {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]fault.Health, len(c.nodes))
	for _, n := range c.nodes {
		out[n.name] = n.health
	}
	return out
}

// Granted snapshots every node's current grant.
func (c *Coordinator) Granted() map[string]cmp.Watts {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]cmp.Watts, len(c.nodes))
	for _, n := range c.nodes {
		out[n.name] = n.granted
	}
	return out
}

// HeldWatts returns the watts under strict-cap quarantine holds: reclaimed
// from quarantined nodes but not yet returned to the distributable pool.
func (c *Coordinator) HeldWatts() cmp.Watts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.heldLocked()
}

// Epoch returns the global fencing epoch.
func (c *Coordinator) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Counts returns the lifetime quarantine, re-admission and fencing tallies.
func (c *Coordinator) Counts() (quarantines, readmissions, fenced uint64) {
	return c.quarantines.Load(), c.readmissions.Load(), c.fenced.Load()
}

// RegisterMetrics exposes the fleet on a telemetry registry: cluster budget
// accounting, quarantine counters, and per-node health/grant gauges (the
// registry has no labels, so per-node series are name suffixes).
func (c *Coordinator) RegisterMetrics(reg *telemetry.Registry) {
	reg.GaugeFunc("powerchief_fleet_budget_watts",
		"Cluster-wide power budget owned by the fleet coordinator.",
		func() float64 { return float64(c.opts.Budget) })
	reg.GaugeFunc("powerchief_fleet_granted_watts",
		"Sum of granted node budgets (the fleet-level draw).",
		func() float64 { return float64(c.Draw()) })
	reg.GaugeFunc("powerchief_fleet_nodes",
		"Nodes in the coordinator's ledger.",
		func() float64 { return float64(len(c.nodes)) })
	reg.GaugeFunc("powerchief_fleet_nodes_quarantined",
		"Nodes currently quarantined (down or recovering).",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			q := 0
			for _, n := range c.nodes {
				if n.health == fault.Down || n.health == fault.Recovering {
					q++
				}
			}
			return float64(q)
		})
	reg.GaugeFunc("powerchief_fleet_held_watts",
		"Watts under strict-cap quarantine holds, kept out of the pool.",
		func() float64 { return float64(c.HeldWatts()) })
	reg.CounterFunc("powerchief_fleet_quarantines_total",
		"Node transitions into quarantine over the coordinator's lifetime.",
		func() float64 { return float64(c.quarantines.Load()) })
	reg.CounterFunc("powerchief_fleet_readmissions_total",
		"Budget-safe node re-admissions over the coordinator's lifetime.",
		func() float64 { return float64(c.readmissions.Load()) })
	reg.CounterFunc("powerchief_fleet_fenced_total",
		"Stale-epoch reports and probes rejected by fencing.",
		func() float64 { return float64(c.fenced.Load()) })
	for _, n := range c.nodes {
		n := n
		sn := telemetry.SanitizeName(n.name)
		reg.GaugeFunc("powerchief_fleet_node_health_"+sn,
			"Health state of one node (0 healthy, 1 suspect, 2 down, 3 recovering).",
			func() float64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				return float64(n.health)
			})
		reg.GaugeFunc("powerchief_fleet_node_granted_watts_"+sn,
			"Granted budget of one node.",
			func() float64 { return float64(n.Budget()) })
	}
}

// Interface conformance.
var (
	_ core.System      = (*Coordinator)(nil)
	_ ClusterView      = (*Coordinator)(nil)
	_ arbiter.View     = (*Coordinator)(nil)
	_ core.NodeControl = (*nodeState)(nil)
)
