package fleet

import (
	"time"

	"powerchief/internal/arbiter"
	"powerchief/internal/cmp"
	"powerchief/internal/stats"
)

// RPC method names of the fleet wire protocol. Like the fault wire codes,
// they are part of the protocol and must never be renamed.
const (
	// MethodNodeInfo returns the node's identity (NodeInfo).
	MethodNodeInfo = "node.info"
	// MethodNodeReport returns the node's current Report.
	MethodNodeReport = "node.report"
	// MethodNodeGrant delivers a Grant; stale epochs are rejected with
	// fault.ErrStaleEpoch.
	MethodNodeGrant = "node.grant"
)

// NodeInfo identifies a node service.
type NodeInfo struct {
	Node string `json:"node"`
}

// Report is one node's heartbeat answer: its bottleneck metric and local
// power accounting, tagged with the fencing epoch of the last grant it
// accepted. The coordinator ingests the metric only when the epoch matches
// its ledger — a mismatched report proves liveness but is otherwise fenced
// off (it predates a reclamation or the node restarted).
type Report struct {
	Node string `json:"node"`
	// Epoch echoes the last accepted grant's fencing epoch (0 before any
	// grant, or after a restart).
	Epoch uint64 `json:"epoch"`
	// Metric is the node's bottleneck metric: the Equation 1 expected delay
	// of its slowest stage, aggregated upward for the fleet to weight.
	Metric time.Duration `json:"metric"`
	// Draw and Budget are the node's local power accounting.
	Draw   cmp.Watts `json:"draw"`
	Budget cmp.Watts `json:"budget"`

	// Stages is the per-stage Equation 1 breakdown behind Metric, when the
	// node's backend exposes one — it lets the coordinator's arbiter weight
	// by marginal benefit (how far the bottleneck protrudes over the rest
	// of the pipeline) instead of absolute slowness. Omitempty keeps frames
	// from scalar-only nodes byte-identical, and old coordinators simply
	// ignore the field — mixed fleets interoperate both directions.
	Stages []arbiter.StageMetric `json:"stages,omitempty"`

	// Ingest carries the node's delta-batched query statistics — everything
	// folded locally since the last heartbeat — when the node service has
	// ingest enabled. The heartbeat is the transport: shipping the batch
	// here costs zero extra RPCs and bounds staleness by the heartbeat
	// interval. Omitempty keeps frames from old nodes (and to old
	// coordinators) byte-identical when the feature is off.
	Ingest *stats.Delta `json:"ingest,omitempty"`
}

// Grant re-assigns one node's power budget. Epoch is the coordinator's
// fencing epoch: strictly increasing across all grants to all nodes, so a
// node can reject a grant from a superseded term (Epoch below the last it
// accepted) and the coordinator can recognise — and fence — reports that
// predate a quarantine-time reclamation.
type Grant struct {
	Watts cmp.Watts `json:"watts"`
	Epoch uint64    `json:"epoch"`
}

// Transport is the coordinator's view of one node, however it is reached:
// over RPC (RPCNode), or in virtual time (SimNode). Report and Grant errors
// are failures of the exchange — the health state machine counts them toward
// quarantine.
type Transport interface {
	// Name identifies the node; it must be stable across reconnects.
	Name() string
	// Report fetches the node's heartbeat report.
	Report() (Report, error)
	// Grant delivers a budget grant.
	Grant(Grant) error
}
