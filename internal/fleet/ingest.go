package fleet

import (
	"sync"
	"time"

	"powerchief/internal/stats"
	"powerchief/internal/telemetry"
)

// fleetIngest is the coordinator's side of delta-batched node statistics:
// heartbeat-carried deltas merge into one fleet-wide latency histogram
// (exact — every node folds on the shared bin layout), with per-node
// sequence tracking so lost heartbeat windows are counted, not silently
// absorbed.
type fleetIngest struct {
	mu      sync.Mutex
	hist    *stats.Histogram
	deltas  uint64
	queries uint64
	seqGaps uint64
	lastSeq map[string]uint64
}

// foldIngest merges one node's heartbeat delta. Called from the Adjust
// heartbeat loop for fenced-and-accepted reports only — the same ingest
// discipline as the bottleneck metric.
func (c *Coordinator) foldIngest(node string, d *stats.Delta) {
	if d.Empty() || d.Validate() != nil {
		return
	}
	c.ingest.mu.Lock()
	defer c.ingest.mu.Unlock()
	if c.ingest.hist == nil {
		c.ingest.hist = stats.NewBinHistogram()
		c.ingest.lastSeq = make(map[string]uint64)
	}
	if last, seen := c.ingest.lastSeq[node]; seen && d.Seq != last+1 {
		c.ingest.seqGaps++
	}
	c.ingest.lastSeq[node] = d.Seq
	if d.E2E != nil {
		if merged, err := stats.MergeDigests(c.ingest.hist.Digest(), d.E2E); err == nil {
			c.ingest.hist = merged
		}
	}
	c.ingest.deltas++
	c.ingest.queries += d.Queries
}

// IngestCounts returns the heartbeat-delta fold counters: deltas folded,
// completed queries they summarized, and per-node sequence gaps (each gap
// is at most one heartbeat window of statistics lost).
func (c *Coordinator) IngestCounts() (deltas, queries, seqGaps uint64) {
	c.ingest.mu.Lock()
	defer c.ingest.mu.Unlock()
	return c.ingest.deltas, c.ingest.queries, c.ingest.seqGaps
}

// FleetLatency returns the fleet-wide end-to-end latency distribution
// merged from node deltas: count, mean and the p-quantile. ok is false
// before any delta carried an E2E digest.
func (c *Coordinator) FleetLatency(p float64) (count uint64, mean, quantile time.Duration, ok bool) {
	c.ingest.mu.Lock()
	defer c.ingest.mu.Unlock()
	if c.ingest.hist == nil || c.ingest.hist.Count() == 0 {
		return 0, 0, 0, false
	}
	return c.ingest.hist.Count(), c.ingest.hist.Mean(), c.ingest.hist.Quantile(p), true
}

// RegisterIngestMetrics exports the fleet-wide ingest telemetry on reg.
func (c *Coordinator) RegisterIngestMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("powerchief_fleet_ingest_deltas_total",
		"Heartbeat-carried statistic deltas folded from fleet nodes.",
		func() float64 { d, _, _ := c.IngestCounts(); return float64(d) })
	reg.CounterFunc("powerchief_fleet_ingest_queries_total",
		"Completed queries summarized by folded node deltas.",
		func() float64 { _, q, _ := c.IngestCounts(); return float64(q) })
	reg.CounterFunc("powerchief_fleet_ingest_seq_gaps_total",
		"Node delta sequence gaps (lost heartbeat windows).",
		func() float64 { _, _, g := c.IngestCounts(); return float64(g) })
	reg.GaugeFunc("powerchief_fleet_latency_p99_seconds",
		"Fleet-wide p99 end-to-end latency merged from node deltas.",
		func() float64 {
			_, _, p99, ok := c.FleetLatency(0.99)
			if !ok {
				return 0
			}
			return p99.Seconds()
		})
	reg.GaugeFunc("powerchief_fleet_latency_mean_seconds",
		"Fleet-wide mean end-to-end latency merged from node deltas.",
		func() float64 {
			_, mean, _, ok := c.FleetLatency(0.99)
			if !ok {
				return 0
			}
			return mean.Seconds()
		})
}
