package fleet

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/dist"
	"powerchief/internal/fault"
	"powerchief/internal/rpc"
	"powerchief/internal/telemetry"
)

// Fleet-level chaos coverage: a real coordinator over real RPC against node
// services behind ChaosProxies. The promises under test mirror the dist
// layer's one level up: at every control epoch Σ granted node budgets stays
// under the cluster budget, a killed node's watts are reclaimed within one
// epoch, a healed partition's pre-fence state is rejected by epoch fencing,
// and re-admission is budget-safe.

// chaosClientOptions keeps node death cheap: short deadlines, one retryless
// attempt per exchange.
func chaosClientOptions() rpc.ClientOptions {
	return rpc.ClientOptions{DialTimeout: 500 * time.Millisecond, CallTimeout: 300 * time.Millisecond}
}

// fleetHarness is one coordinator over proxied node services.
type fleetHarness struct {
	coord   *Coordinator
	svcs    []*NodeService
	proxies []*dist.ChaosProxy
	reb     *Rebalance
	audit   *telemetry.AuditLog
	budget  cmp.Watts
}

// startFleet builds len(loads) synthetic nodes, each behind its own
// ChaosProxy, and a coordinator dialing through the proxies.
func startFleet(t *testing.T, loads []float64, budget, floor cmp.Watts) *fleetHarness {
	t.Helper()
	h := &fleetHarness{reb: NewRebalance(), audit: telemetry.NewAuditLog(1024), budget: budget}
	var transports []Transport
	for i, load := range loads {
		svc, err := NewNodeService(fmt.Sprintf("node-%d", i), NewSynthBackend(load, 0))
		if err != nil {
			t.Fatal(err)
		}
		backend, err := svc.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		proxy := dist.NewChaosProxy(backend)
		front, err := proxy.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		node, err := DialNode(front, chaosClientOptions())
		if err != nil {
			t.Fatal(err)
		}
		h.svcs = append(h.svcs, svc)
		h.proxies = append(h.proxies, proxy)
		transports = append(transports, node)
		t.Cleanup(func() { node.Close() })
	}
	coord, err := NewCoordinator(Options{
		Budget: budget, Floor: floor, SuspectAfter: 2, Audit: h.audit,
	}, transports...)
	if err != nil {
		t.Fatal(err)
	}
	h.coord = coord
	t.Cleanup(func() {
		for _, p := range h.proxies {
			p.Close()
		}
		for _, s := range h.svcs {
			s.Close()
		}
	})
	return h
}

// adjust runs one control epoch and asserts the cluster invariant after it.
func (h *fleetHarness) adjust(t *testing.T) error {
	t.Helper()
	_, err := h.coord.Adjust(h.reb)
	if err != nil && !fault.IsDegraded(err) {
		t.Fatalf("Adjust: %v", err)
	}
	if draw := h.coord.Draw(); draw > h.budget+1e-9 {
		t.Fatalf("Σ granted %v over cluster budget %v", draw, h.budget)
	}
	return err
}

// TestFleetChaosKillReclaimReadmit is the headline chaos sequence: allocate,
// kill a node mid-run, watch its watts reclaimed within one epoch and
// redistributed, heal the partition, and watch the budget-safe re-admission
// fence the node's stale epoch.
func TestFleetChaosKillReclaimReadmit(t *testing.T) {
	h := startFleet(t, []float64{1, 1.5, 2}, 100, 10)

	// Cold start: the first epoch grants the whole pool, metric-weighted.
	h.adjust(t)
	granted := h.coord.Granted()
	for name, g := range granted {
		if g < 10-1e-9 {
			t.Errorf("node %s granted %v, below the 10W floor", name, g)
		}
	}
	if draw := h.coord.Draw(); draw < 100-1e-6 {
		t.Errorf("cold start allocated %v of the 100W pool", draw)
	}

	// Kill node-0 (partition flavour: the service process stays up and
	// keeps its fencing epoch).
	h.proxies[0].Partition()
	h.adjust(t) // failure 1 → suspect
	h.adjust(t) // failure 2 → down, reclaimed, redistributed
	healths := h.coord.Healths()
	if healths["node-0"] != fault.Down {
		t.Fatalf("node-0 health %v, want down (healths %v)", healths["node-0"], healths)
	}
	granted = h.coord.Granted()
	if granted["node-0"] != 0 {
		t.Fatalf("node-0 still holds %v after the reclaim epoch", granted["node-0"])
	}
	if draw := h.coord.Draw(); draw < 100-1e-6 {
		t.Errorf("reclaimed watts not redistributed: draw %v of 100", draw)
	}

	// Degraded epochs keep running on the survivors.
	h.adjust(t)

	// Heal the partition. The node's service kept its pre-quarantine epoch,
	// so the re-admission probe sees a stale report: fencing counts it, the
	// metric is not ingested, and the node re-enters at the floor.
	preQ, preR, preF := h.coord.Counts()
	h.proxies[0].Restore("")
	h.adjust(t)
	healths = h.coord.Healths()
	if healths["node-0"] != fault.Healthy {
		t.Fatalf("node-0 health %v after heal, want healthy (healths %v)", healths["node-0"], healths)
	}
	granted = h.coord.Granted()
	if g := granted["node-0"]; !wattsNear(g, 10) {
		t.Errorf("re-admitted node granted %v, want the 10W floor", g)
	}
	q, r, f := h.coord.Counts()
	if q < 1 || r <= preR || f <= preF {
		t.Errorf("counters q/r/f = %d/%d/%d (pre %d/%d/%d), want quarantine, re-admission and fence recorded",
			q, r, f, preQ, preR, preF)
	}

	// Cooldown pins the returnee at the floor while survivors re-shuffle.
	h.adjust(t)
	if g := h.coord.Granted()["node-0"]; !wattsNear(g, 10) {
		t.Errorf("node in cooldown granted %v, want the pinned 10W floor", g)
	}

	// The decision trail recorded the whole story.
	var sawQuarantine, sawReadmit, sawFenced, sawGrant bool
	for _, e := range h.audit.Events() {
		switch e.Kind {
		case telemetry.EventNodeQuarantine:
			sawQuarantine = true
		case telemetry.EventNodeReadmit:
			sawReadmit = true
		case telemetry.EventNodeFenced:
			sawFenced = true
		case telemetry.EventSetBudget:
			sawGrant = true
		}
	}
	if !sawQuarantine || !sawReadmit || !sawFenced || !sawGrant {
		t.Errorf("audit trail missing events: quarantine=%v readmit=%v fenced=%v grant=%v",
			sawQuarantine, sawReadmit, sawFenced, sawGrant)
	}
}

// TestFleetChaosHangIsBoundedAndRecovers: a hung node (accepts, never
// answers) costs one call deadline per epoch, not a stuck control loop; a
// transient hang clears without a quarantine, a sustained one quarantines
// and re-admits like a kill.
func TestFleetChaosHangIsBoundedAndRecovers(t *testing.T) {
	h := startFleet(t, []float64{1, 1}, 60, 10)
	h.adjust(t)
	// A second epoch ingests the post-grant metrics so the allocation is
	// settled: the hung epoch below then carries an empty plan, and the hang
	// costs exactly one heartbeat failure rather than heartbeat + grant.
	h.adjust(t)

	// Transient hang: one failed heartbeat → suspect, then recovery.
	h.proxies[1].SetMode(dist.ChaosHang)
	start := time.Now()
	h.adjust(t)
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("hung node stalled the epoch for %v", elapsed)
	}
	if got := h.coord.Healths()["node-1"]; got != fault.Suspect {
		t.Fatalf("node-1 health %v after one hung heartbeat, want suspect", got)
	}
	h.proxies[1].Restore("")
	h.proxies[1].SeverConns() // drop the hung in-flight connection
	h.adjust(t)
	if got := h.coord.Healths()["node-1"]; got != fault.Healthy {
		t.Fatalf("node-1 health %v after transient hang, want healthy", got)
	}
	q, _, _ := h.coord.Counts()
	if q != 0 {
		t.Errorf("transient hang caused %d quarantines, want 0", q)
	}

	// Sustained hang: quarantine, reclaim, then re-admission after restore.
	h.proxies[1].SetMode(dist.ChaosHang)
	h.proxies[1].SeverConns()
	h.adjust(t)
	h.adjust(t)
	if got := h.coord.Healths()["node-1"]; got != fault.Down {
		t.Fatalf("node-1 health %v after sustained hang, want down", got)
	}
	if g := h.coord.Granted()["node-1"]; g != 0 {
		t.Errorf("hung node still holds %v", g)
	}
	h.proxies[1].Restore("")
	h.proxies[1].SeverConns()
	h.adjust(t)
	if got := h.coord.Healths()["node-1"]; got != fault.Healthy {
		t.Fatalf("node-1 health %v after restore, want healthy", got)
	}
}

// TestNodeServiceRejectsStaleGrant pins the grant half of fencing on the
// wire: a grant whose epoch is behind the last accepted one is rejected
// with fault.ErrStaleEpoch, and the sentinel survives the RPC round trip.
func TestNodeServiceRejectsStaleGrant(t *testing.T) {
	svc, err := NewNodeService("n", NewSynthBackend(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	node, err := DialNode(addr, chaosClientOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })

	if err := node.Grant(Grant{Watts: 5, Epoch: 5}); err != nil {
		t.Fatalf("fresh grant: %v", err)
	}
	err = node.Grant(Grant{Watts: 7, Epoch: 3})
	if !errors.Is(err, fault.ErrStaleEpoch) {
		t.Fatalf("stale grant error = %v, want fault.ErrStaleEpoch across the wire", err)
	}
	rep, err := node.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 5 || rep.Budget != 5 {
		t.Fatalf("report %+v, want the epoch-5 5W grant intact", rep)
	}
}

// TestFleetAllNodesDownIsDegraded: with every node quarantined the epoch
// reports fault.ErrNoHealthyNodes — degraded, not fatal — and the fleet
// recovers when nodes return.
func TestFleetAllNodesDownIsDegraded(t *testing.T) {
	h := startFleet(t, []float64{1, 1}, 60, 10)
	h.adjust(t)
	for _, p := range h.proxies {
		p.Kill()
	}
	h.adjust(t)
	err := h.adjust(t)
	if !errors.Is(err, fault.ErrNoHealthyNodes) {
		t.Fatalf("all-down epoch = %v, want ErrNoHealthyNodes", err)
	}
	if draw := h.coord.Draw(); draw != 0 {
		t.Errorf("all nodes down but %v still granted", draw)
	}
	for _, p := range h.proxies {
		p.Restore("")
	}
	h.adjust(t)
	for name, hlt := range h.coord.Healths() {
		if hlt != fault.Healthy {
			t.Errorf("node %s health %v after restore, want healthy", name, hlt)
		}
	}
}
