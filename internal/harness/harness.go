package harness

import (
	"fmt"
	"math/rand"
	"time"

	"powerchief/internal/app"
	"powerchief/internal/cmp"
	"powerchief/internal/controlplane"
	"powerchief/internal/core"
	"powerchief/internal/query"
	"powerchief/internal/replay"
	"powerchief/internal/sim"
	"powerchief/internal/stage"
	"powerchief/internal/stats"
	"powerchief/internal/telemetry"
	"powerchief/internal/workload"
)

// Scenario describes one experiment run.
type Scenario struct {
	Name string
	App  app.App

	// Instances is the initial per-stage instance count (nil = one each).
	Instances []int
	// Level is the initial uniform frequency level.
	Level cmp.Level
	// StageLevels overrides Level per stage (the static configurations of
	// Figure 2). Nil applies Level everywhere.
	StageLevels []cmp.Level
	// Budget is the application power budget. Zero derives it from the
	// initial configuration (sum of initial core powers), the paper's
	// "accommodate one service instance at 1.8 GHz per stage" rule.
	Budget cmp.Watts
	// Cores is the chip size (default 16, the dual-socket E5-2630v3).
	Cores int

	// Policy constructs a fresh control policy for the run. Nil = baseline.
	Policy func() core.Policy
	// AdjustInterval is the control period (Table 2: 25 s).
	AdjustInterval time.Duration
	// StatsWindow is the moving-window span for the Command Center
	// statistics. Zero defaults to the adjust interval.
	StatsWindow time.Duration

	// Source builds the arrival process given the reference capacity in
	// qps. Nil defaults to a constant medium load.
	Source func(refCapacityQPS float64) workload.Source
	// RefInstances/RefLevel define the reference configuration whose
	// capacity anchors load levels; zero values default to the scenario's
	// own initial configuration. Keeping the reference fixed lets every
	// policy face the identical arrival process.
	RefInstances []int
	RefLevel     cmp.Level

	// Duration is the load-generation horizon.
	Duration time.Duration
	// DrainFactor bounds the post-horizon drain: the run stops when the
	// pipeline empties or at Duration×(1+DrainFactor). Default 1.
	DrainFactor float64

	// Seed drives all randomness in the run.
	Seed int64
	// SampleEvery controls trace sampling (default: adjust interval).
	SampleEvery time.Duration

	// HopDelay optionally models network delay between consecutive stages
	// (the distributed deployment of §8.5). Nil means stages share the CMP.
	HopDelay func(from, to int) time.Duration
	// Observe, when set, receives every completed query (with its carried
	// per-instance records) — for per-query analysis beyond the collected
	// summaries.
	Observe func(*query.Query)
	// Audit, when set, is attached to the policy (via core.AuditSetter) so
	// the run leaves a decision timeline behind. Nil keeps auditing off.
	Audit *telemetry.AuditLog
	// Tracer, when set, samples completed queries into span trees.
	Tracer *telemetry.Tracer
	// Dispatcher optionally replaces the default join-shortest-queue
	// dispatch policy on every stage (one fresh dispatcher per stage).
	Dispatcher func() stage.Dispatcher

	// DisableDecisionTrace turns off the default decision recording. Runs
	// whose policy exposes its decision path (core.TapSetter) record one
	// replay frame — snapshot, plan, outcome — per adjust interval into
	// Result.Decisions; the recording is bounded (DecisionFrames) and adds
	// one snapshot capture per tick.
	DisableDecisionTrace bool
	// DecisionFrames bounds the recorded decision trace. Zero means
	// replay.DefaultFrameLimit.
	DecisionFrames int
}

// Result carries the collected metrics of one run.
type Result struct {
	Scenario string
	Policy   string

	Submitted uint64
	Completed uint64

	// Latency summarizes end-to-end latency over all completed queries.
	Latency *stats.Summary

	// AvgPower is the time-averaged chip draw over the measurement horizon.
	AvgPower cmp.Watts
	// PeakPower is the initial (reference) draw, used for the power-saving
	// fractions of Figures 13/14.
	PeakPower cmp.Watts

	// Trace holds the sampled time series: per-instance frequency
	// ("freq:<name>"), per-stage instance counts ("instances:<stage>"),
	// total power ("power"), windowed latency ("latency").
	Trace *stats.TimeSeries

	// Boosts tallies the decisions taken by kind.
	Boosts map[core.BoostKind]int
	// Withdrawn counts instances withdrawn during the run.
	Withdrawn int

	// Decisions is the recorded decision trace (nil when the policy has no
	// plan-level decision path or recording was disabled). Write it with
	// Decisions.WriteFile and replay it with internal/replay or
	// `powerbench replay`.
	Decisions *replay.Recorder
}

// defaults fills in unset scenario fields.
func (sc *Scenario) defaults() {
	if sc.Cores == 0 {
		sc.Cores = 16
	}
	if sc.AdjustInterval == 0 {
		sc.AdjustInterval = 25 * time.Second
	}
	if sc.StatsWindow == 0 {
		sc.StatsWindow = sc.AdjustInterval
	}
	if sc.SampleEvery == 0 {
		sc.SampleEvery = sc.AdjustInterval
	}
	if sc.DrainFactor == 0 {
		sc.DrainFactor = 1
	}
	if sc.Instances == nil {
		sc.Instances = make([]int, len(sc.App.Stages))
		for i := range sc.Instances {
			sc.Instances[i] = 1
		}
	}
	if sc.RefInstances == nil {
		sc.RefInstances = sc.Instances
	}
	if sc.RefLevel == 0 {
		sc.RefLevel = sc.Level
	}
	if sc.Policy == nil {
		sc.Policy = func() core.Policy { return core.Static{} }
	}
	if sc.Source == nil {
		sc.Source = func(capacity float64) workload.Source {
			return workload.Constant(workload.RateForUtilization(capacity, workload.Medium.Utilization()))
		}
	}
}

// Run executes the scenario to completion and returns its metrics.
func Run(sc Scenario) (*Result, error) {
	sc.defaults()
	if err := sc.App.Validate(); err != nil {
		return nil, err
	}
	if sc.Duration <= 0 {
		return nil, fmt.Errorf("harness: scenario %q needs a positive duration", sc.Name)
	}

	eng := sim.NewEngine()
	model := cmp.DefaultModel()
	specs, err := sc.App.Specs(sc.Instances, sc.Level)
	if err != nil {
		return nil, err
	}
	if sc.StageLevels != nil {
		if len(sc.StageLevels) != len(specs) {
			return nil, fmt.Errorf("harness: %d stage levels for %d stages", len(sc.StageLevels), len(specs))
		}
		for i := range specs {
			specs[i].Level = sc.StageLevels[i]
		}
	}
	budget := sc.Budget
	if budget == 0 {
		for _, spec := range specs {
			budget += cmp.Watts(spec.Instances) * model.Power(spec.Level)
		}
	}
	chip := cmp.NewChip(sc.Cores, model, budget)
	sys, err := stage.NewSystem(eng, chip, specs)
	if err != nil {
		return nil, fmt.Errorf("harness: building %q: %w", sc.Name, err)
	}
	if sc.HopDelay != nil {
		sys.SetHopDelay(sc.HopDelay)
	}
	if sc.Dispatcher != nil {
		for _, st := range sys.Stages() {
			st.SetDispatcher(sc.Dispatcher())
		}
	}

	view := core.NewDESView(sys)
	agg := core.NewAggregator(sc.StatsWindow, eng.Now)
	policy := sc.Policy()

	res := &Result{
		Scenario:  sc.Name,
		Policy:    policy.Name(),
		Latency:   stats.NewSummary(),
		PeakPower: chip.Draw(),
		Trace:     stats.NewTimeSeries(),
		Boosts:    make(map[core.BoostKind]int),
	}

	// Decision recording: on by default for policies that expose their
	// decision path. The tap snapshots inputs the policy reads anyway, so
	// the run's decisions stay byte-identical with recording on or off.
	var recorder *replay.Recorder
	if !sc.DisableDecisionTrace {
		if _, ok := policy.(core.TapSetter); ok {
			recorder = replay.NewRecorder(replay.Header{
				Scenario: sc.Name,
				Seed:     sc.Seed,
				Policy:   policy.Name(),
			}, sc.DecisionFrames)
			res.Decisions = recorder
		}
	}

	sys.OnComplete(func(q *query.Query) {
		agg.Ingest(q)
		res.Latency.Observe(q.Latency())
	})
	if sc.Observe != nil {
		sys.OnComplete(sc.Observe)
	}
	if sc.Tracer != nil {
		sys.OnComplete(sc.Tracer.ObserveQuery)
	}

	// Load: capacity anchored to the reference configuration.
	capacity := sc.App.CapacityQPS(sc.RefInstances, sc.RefLevel)
	src := sc.Source(capacity)
	rng := rand.New(rand.NewSource(sc.Seed))
	branches := make([]int, len(sc.Instances))
	copy(branches, sc.Instances)
	gen := workload.NewGenerator(eng, sys, src, func(r *rand.Rand) [][]time.Duration {
		return sc.App.DrawWork(r, branches)
	}, rng, sc.Duration)
	gen.Start()

	// Control plane: adjust epochs plus the trace-sampling epoch, on the
	// engine's virtual clock. Registration order (adjust before sample) is
	// part of the determinism contract the golden figures pin.
	var powerIntegral float64 // watt-seconds over the horizon
	lastSample := time.Duration(0)
	opts := controlplane.Options{
		Policy:         policy,
		Interval:       sc.AdjustInterval,
		SampleInterval: sc.SampleEvery,
		Audit:          sc.Audit,
		OnSample: func(now time.Duration) {
			powerIntegral += float64(chip.Draw()) * (now - lastSample).Seconds()
			lastSample = now
			res.Trace.Record("power", now, float64(chip.Draw()))
			if lat, ok := agg.WindowLatency(); ok {
				res.Trace.Record("latency", now, lat.Seconds())
			}
			for _, st := range sys.Stages() {
				active := st.Active()
				res.Trace.Record("instances:"+st.Name(), now, float64(len(active)))
				for _, in := range active {
					res.Trace.Record("freq:"+in.Name(), now, float64(in.Level().GHz()))
				}
			}
		},
	}
	if recorder != nil {
		opts.Tap = recorder
	}
	ctl, err := controlplane.Start(controlplane.SimClock(eng), controlplane.NewAdjuster(view, agg), opts)
	if err != nil {
		return nil, fmt.Errorf("harness: %q control plane: %w", sc.Name, err)
	}

	// Generation horizon, then drain.
	eng.RunUntil(sc.Duration)
	deadline := sc.Duration + time.Duration(float64(sc.Duration)*sc.DrainFactor)
	for eng.Now() < deadline && !sys.Drain() {
		step := sc.AdjustInterval
		if eng.Now()+step > deadline {
			step = deadline - eng.Now()
		}
		eng.RunUntil(eng.Now() + step)
	}
	ctl.Stop()
	res.Boosts = ctl.Boosts()

	if horizon := eng.Now(); horizon > 0 && lastSample > 0 {
		res.AvgPower = cmp.Watts(powerIntegral / lastSample.Seconds())
	} else {
		res.AvgPower = chip.Draw()
	}
	res.Submitted = sys.Submitted()
	res.Completed = sys.Completed()
	res.Withdrawn = withdrawnOf(policy)

	if err := chip.CheckInvariant(); err != nil {
		return nil, fmt.Errorf("harness: %q ended with a broken chip invariant: %w", sc.Name, err)
	}
	return res, nil
}

// withdrawnOf extracts the withdraw count from policies that track it.
func withdrawnOf(p core.Policy) int {
	switch v := p.(type) {
	case *core.PowerChief:
		return v.Withdrawn
	case *core.PowerChiefSaver:
		return v.Withdrawn
	default:
		return 0
	}
}

// Improvement returns baseline/measured ratios for the average and P99
// latency of a result against a baseline result — the y-axis of Figures 4,
// 10 and 12.
func Improvement(baseline, measured *Result) (avg, p99 float64) {
	avg = stats.Improvement(baseline.Latency.Mean(), measured.Latency.Mean())
	p99 = stats.Improvement(baseline.Latency.P99(), measured.Latency.P99())
	return avg, p99
}
