package harness

import (
	"fmt"

	"powerchief/internal/app"
	"powerchief/internal/cmp"
	"powerchief/internal/config"
	"powerchief/internal/core"
	"powerchief/internal/workload"
)

// FromConfig materializes a runnable Scenario from a declarative experiment
// description (internal/config), so experiments can be stored as JSON files
// and replayed exactly.
func FromConfig(e config.Experiment) (Scenario, error) {
	if err := e.Validate(); err != nil {
		return Scenario{}, err
	}
	a, err := app.ByName(e.App)
	if err != nil {
		return Scenario{}, err
	}
	load, err := workload.ParseLevel(e.LoadLevel)
	if err != nil {
		return Scenario{}, err
	}
	// The adjust interval lives on the scenario; the remaining control
	// parameters configure the policy.
	cfg := core.DefaultConfig()
	if e.BalanceThreshold > 0 {
		cfg.BalanceThreshold = e.BalanceThreshold.Std()
	}
	cfg.WithdrawInterval = e.WithdrawInterval.Std()

	var policy func() core.Policy
	switch e.Policy {
	case "baseline":
		policy = func() core.Policy { return core.Static{} }
	case "freq-boost":
		policy = func() core.Policy { return core.NewFreqBoost(cfg) }
	case "inst-boost":
		policy = func() core.Policy { return core.NewInstBoost(cfg) }
	case "powerchief":
		policy = func() core.Policy { return core.NewPowerChief(cfg) }
	case "pegasus":
		qos := e.QoS.Std()
		policy = func() core.Policy { return core.NewPegasus(qos) }
	case "saver":
		qos := e.QoS.Std()
		policy = func() core.Policy { return core.NewPowerChiefSaver(qos, cfg) }
	default:
		return Scenario{}, fmt.Errorf("harness: unknown policy %q", e.Policy)
	}

	sc := Scenario{
		Name:           e.Name,
		App:            a,
		Instances:      e.Instances,
		Level:          e.Level(),
		Budget:         cmp.Watts(e.BudgetWatts),
		Policy:         policy,
		AdjustInterval: e.AdjustInterval.Std(),
		Source:         constantLoad(load),
		Duration:       e.Duration.Std(),
		Seed:           e.Seed,
	}
	return sc, nil
}
