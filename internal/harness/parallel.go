package harness

import (
	"fmt"
	"runtime"
	"sync"
)

// RunAll executes the scenarios concurrently, bounded by GOMAXPROCS, and
// returns their results in input order. Each scenario owns a private
// discrete-event engine and rng seeded from the scenario itself, so the
// results are bit-identical to running them sequentially — parallelism here
// only buys wall time, which is what lets cmd/experiments regenerate the
// whole evaluation section in a fraction of the sequential cost. The first
// scenario error aborts nothing else but is returned (with its scenario
// name) after all runs finish.
func RunAll(scs []Scenario) ([]*Result, error) {
	results := make([]*Result, len(scs))
	errs := make([]error, len(scs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := range scs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = Run(scs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("harness: scenario %q: %w", scs[i].Name, err)
		}
	}
	return results, nil
}
