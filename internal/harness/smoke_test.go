package harness

import (
	"testing"
	"time"

	"powerchief/internal/app"
	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/workload"
)

// siriusScenario builds the Table 2 mitigation setup for one policy.
func siriusScenario(name string, level workload.Level, policy func() core.Policy, seed int64) Scenario {
	return Scenario{
		Name:   name,
		App:    app.Sirius(),
		Level:  cmp.MidLevel,
		Policy: policy,
		Source: func(capacity float64) workload.Source {
			return workload.Constant(workload.RateForUtilization(capacity, level.Utilization()))
		},
		Duration: 900 * time.Second,
		Seed:     seed,
	}
}

func TestSmokeBaselineVsPowerChiefHighLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	base, err := Run(siriusScenario("base", workload.High, nil, 1))
	if err != nil {
		t.Fatal(err)
	}
	pc, err := Run(siriusScenario("pc", workload.High, func() core.Policy {
		return core.NewPowerChief(core.DefaultConfig())
	}, 1))
	if err != nil {
		t.Fatal(err)
	}
	avg, p99 := Improvement(base, pc)
	t.Logf("baseline: %v (completed %d/%d)", base.Latency, base.Completed, base.Submitted)
	t.Logf("powerchief: %v (completed %d/%d, boosts %v, withdrawn %d)",
		pc.Latency, pc.Completed, pc.Submitted, pc.Boosts, pc.Withdrawn)
	t.Logf("improvement: avg %.1fx p99 %.1fx", avg, p99)
	if avg < 2 {
		t.Errorf("PowerChief avg improvement %.2fx, want ≥ 2x under high load", avg)
	}
	if p99 < 2 {
		t.Errorf("PowerChief p99 improvement %.2fx, want ≥ 2x under high load", p99)
	}
}
