package harness

import (
	"fmt"
	"time"

	"powerchief/internal/app"
	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/workload"
)

// This file holds one driver per table and figure of the paper's evaluation
// (§8). Each driver builds the scenarios of that experiment, runs them on
// the discrete-event engine, and returns a typed result that render.go can
// print and EXPERIMENTS.md records against the paper's numbers.

// MitigationBudget is the Table 2 power budget: one service instance at the
// medial 1.8 GHz per Sirius/NLP stage.
const MitigationBudget = cmp.Watts(13.56)

// Bar is one bar of a latency-improvement figure.
type Bar struct {
	Label string
	Avg   float64 // average-latency improvement over baseline (×)
	P99   float64 // tail-latency improvement over baseline (×)
}

// BarGroup is a labelled group of bars (one load level of Figures 10/12).
type BarGroup struct {
	Label string
	Bars  []Bar
}

// Figure is a rendered experiment: groups of improvement bars.
type Figure struct {
	ID     string
	Title  string
	Groups []BarGroup
}

// constantLoad builds a Source factory pinning utilization of the reference
// capacity.
func constantLoad(level workload.Level) func(float64) workload.Source {
	return func(capacity float64) workload.Source {
		return workload.Constant(workload.RateForUtilization(capacity, level.Utilization()))
	}
}

// mitigationScenario is the Table 2 setup: stage-agnostic initial allocation
// (one instance per stage at 1.8 GHz), 13.56 W budget, 25 s adjust interval.
func mitigationScenario(a app.App, name string, load workload.Level, policy func() core.Policy, seed int64) Scenario {
	return Scenario{
		Name:           name,
		App:            a,
		Level:          cmp.MidLevel,
		Budget:         MitigationBudget,
		Policy:         policy,
		Source:         constantLoad(load),
		Duration:       900 * time.Second,
		AdjustInterval: 25 * time.Second,
		Seed:           seed,
	}
}

// mitigationPolicies are the boosting techniques compared in Figures 10/12.
func mitigationPolicies() []struct {
	Label string
	New   func() core.Policy
} {
	cfg := core.DefaultConfig()
	return []struct {
		Label string
		New   func() core.Policy
	}{
		{"Freq-Boosting", func() core.Policy { return core.NewFreqBoost(cfg) }},
		{"Inst-Boosting", func() core.Policy { return core.NewInstBoost(cfg) }},
		{"PowerChief", func() core.Policy { return core.NewPowerChief(cfg) }},
	}
}

// improvementFigure runs baseline + policies at each load level. All
// (load, policy) scenarios execute concurrently via RunAll; each scenario
// seeds its own engine, so the bars are identical to a sequential run.
func improvementFigure(id, title string, a app.App, loads []workload.Level, seed int64) (*Figure, error) {
	policies := mitigationPolicies()
	perLoad := 1 + len(policies) // baseline first, then the policies
	var scs []Scenario
	for _, load := range loads {
		scs = append(scs, mitigationScenario(a, fmt.Sprintf("%s-%s-baseline", a.Name, load), load, nil, seed))
		for _, p := range policies {
			scs = append(scs, mitigationScenario(a, fmt.Sprintf("%s-%s-%s", a.Name, load, p.Label), load, p.New, seed))
		}
	}
	results, err := RunAll(scs)
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: id, Title: title}
	for li, load := range loads {
		base := results[li*perLoad]
		group := BarGroup{Label: fmt.Sprintf("%s load", load)}
		for pi, p := range policies {
			avg, p99 := Improvement(base, results[li*perLoad+1+pi])
			group.Bars = append(group.Bars, Bar{Label: p.Label, Avg: avg, P99: p99})
		}
		fig.Groups = append(fig.Groups, group)
	}
	return fig, nil
}

// Figure10 reproduces the Sirius latency-improvement figure: Freq-Boosting,
// Inst-Boosting and PowerChief vs the stage-agnostic baseline under low,
// medium and high load.
func Figure10(seed int64) (*Figure, error) {
	return improvementFigure("figure10",
		"Sirius latency improvement vs stage-agnostic baseline (Table 2 setup)",
		app.Sirius(), []workload.Level{workload.Low, workload.Medium, workload.High}, seed)
}

// Figure12 reproduces the NLP latency-improvement figure.
func Figure12(seed int64) (*Figure, error) {
	return improvementFigure("figure12",
		"NLP latency improvement vs stage-agnostic baseline (Table 2 setup)",
		app.NLP(), []workload.Level{workload.Low, workload.Medium, workload.High}, seed)
}

// Figure4 reproduces the motivating comparison: frequency vs instance
// boosting for Sirius under low and high load — frequency wins under low
// load (serving-dominated), instance boosting wins under high load
// (queuing-dominated).
func Figure4(seed int64) (*Figure, error) {
	cfg := core.DefaultConfig()
	loads := []workload.Level{workload.Low, workload.High}
	policies := []struct {
		Label string
		New   func() core.Policy
	}{
		{"Freq-Boosting", func() core.Policy { return core.NewFreqBoost(cfg) }},
		{"Inst-Boosting", func() core.Policy { return core.NewInstBoost(cfg) }},
	}
	perLoad := 1 + len(policies)
	var scs []Scenario
	for _, load := range loads {
		scs = append(scs, mitigationScenario(app.Sirius(), fmt.Sprintf("fig4-%s-baseline", load), load, nil, seed))
		for _, p := range policies {
			scs = append(scs, mitigationScenario(app.Sirius(), fmt.Sprintf("fig4-%s-%s", load, p.Label), load, p.New, seed))
		}
	}
	results, err := RunAll(scs)
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: "figure4", Title: "Freq vs Inst boosting for Sirius (improvement over baseline)"}
	for li, load := range loads {
		base := results[li*perLoad]
		group := BarGroup{Label: fmt.Sprintf("%s load", load)}
		for pi, p := range policies {
			avg, p99 := Improvement(base, results[li*perLoad+1+pi])
			group.Bars = append(group.Bars, Bar{Label: p.Label, Avg: avg, P99: p99})
		}
		fig.Groups = append(fig.Groups, group)
	}
	return fig, nil
}

// Figure2Row is one static boosting configuration of Figure 2.
type Figure2Row struct {
	Label      string
	Normalized float64 // avg latency normalized to the stage-agnostic baseline
}

// Figure2Result is the full Figure 2 sweep.
type Figure2Result struct {
	Rows []Figure2Row
}

// Figure2 reproduces the motivating experiment: boosting a single Sirius
// stage with either technique under the same 13.56 W budget. The
// configurations are static — donor stages run at 1.6 GHz, the boosted stage
// spends the freed power on frequency (2.1 GHz) or a second instance
// (2×1.5 GHz). The shape to reproduce: boosting the dominant QA stage cuts
// latency sharply, boosting the light IMM stage hurts.
func Figure2(seed int64) (*Figure2Result, error) {
	a := app.Sirius()
	const donorLevel = cmp.Level(4)  // 1.6 GHz
	const freqBoosted = cmp.Level(9) // 2.1 GHz
	const instBoosted = cmp.Level(3) // 1.5 GHz ×2 instances

	scenario := func(name string, instances []int, levels []cmp.Level) Scenario {
		return Scenario{
			Name:        name,
			App:         a,
			Instances:   instances,
			Level:       cmp.MidLevel, // overridden per-stage below via StageLevels
			StageLevels: levels,
			Budget:      MitigationBudget,
			Source:      constantLoad(workload.Medium),
			// Load anchored to the shared baseline configuration.
			RefInstances: []int{1, 1, 1},
			RefLevel:     cmp.MidLevel,
			Duration:     900 * time.Second,
			Seed:         seed,
		}
	}

	// Baseline first, then the six static boosting configurations — all
	// run concurrently.
	scs := []Scenario{scenario("fig2-baseline", []int{1, 1, 1}, nil)}
	labels := []string{"Baseline (stage-agnostic)"}
	stages := []string{"ASR", "IMM", "QA"}
	for i, stageName := range stages {
		levels := []cmp.Level{donorLevel, donorLevel, donorLevel}
		levels[i] = freqBoosted
		scs = append(scs, scenario("fig2-freq-"+stageName, []int{1, 1, 1}, levels))
		labels = append(labels, fmt.Sprintf("Freq-boost %s only", stageName))

		instances := []int{1, 1, 1}
		instances[i] = 2
		levels = []cmp.Level{donorLevel, donorLevel, donorLevel}
		levels[i] = instBoosted
		scs = append(scs, scenario("fig2-inst-"+stageName, instances, levels))
		labels = append(labels, fmt.Sprintf("Inst-boost %s only", stageName))
	}
	results, err := RunAll(scs)
	if err != nil {
		return nil, err
	}
	base := results[0]
	out := &Figure2Result{}
	for i, res := range results {
		out.Rows = append(out.Rows, Figure2Row{
			Label:      labels[i],
			Normalized: float64(res.Latency.Mean()) / float64(base.Latency.Mean()),
		})
	}
	return out, nil
}

// Figure11Result bundles the runtime-behaviour traces of the three policies
// under the time-varying high load.
type Figure11Result struct {
	Runs []*Result // freq-boost, inst-boost, powerchief
}

// Figure11 reproduces the runtime-behaviour experiment: Sirius under the
// phased high-load trace for 900 s; the traces carry the per-instance
// frequencies and per-stage instance counts over time.
func Figure11(seed int64) (*Figure11Result, error) {
	var scs []Scenario
	for _, p := range mitigationPolicies() {
		sc := mitigationScenario(app.Sirius(), "fig11-"+p.Label, workload.High, p.New, seed)
		sc.Source = func(capacity float64) workload.Source {
			return workload.Figure11Trace(workload.RateForUtilization(capacity, workload.High.Utilization()))
		}
		scs = append(scs, sc)
	}
	results, err := RunAll(scs)
	if err != nil {
		return nil, err
	}
	return &Figure11Result{Runs: results}, nil
}

// QoSRun is one policy's outcome in the power-saving experiments.
type QoSRun struct {
	Policy        string
	QoSFraction   float64 // mean windowed latency / QoS target
	PowerFraction float64 // mean power / peak power
	Violations    int     // samples above the QoS target
	Result        *Result
}

// QoSResult is one application's Figure 13/14 outcome.
type QoSResult struct {
	ID    string
	Title string
	QoS   time.Duration
	Runs  []QoSRun
}

// qosExperiment runs baseline / Pegasus / PowerChief on an over-provisioned
// configuration (Table 3) under a bursty load and reports QoS and power
// fractions. util is the base utilization of the over-provisioned capacity;
// bursts reach 1.7× base (capped at 0.85).
func qosExperiment(id, title string, a app.App, instances []int, qos time.Duration, adjust time.Duration, util float64, duration time.Duration, seed int64) (*QoSResult, error) {
	cfg := core.DefaultConfig()
	policies := []struct {
		Label string
		New   func() core.Policy
	}{
		{"baseline", nil},
		{"pegasus", func() core.Policy { return core.NewPegasus(qos) }},
		{"powerchief", func() core.Policy { return core.NewPowerChiefSaver(qos, cfg) }},
	}
	var scs []Scenario
	for _, p := range policies {
		scs = append(scs, Scenario{
			Name:           id + "-" + p.Label,
			App:            a,
			Instances:      instances,
			Level:          cmp.MaxLevel, // Table 3: all services at maximum frequency
			Budget:         0,            // peak: derived from the over-provisioned config
			Policy:         p.New,
			AdjustInterval: adjust,
			StatsWindow:    4 * adjust,
			Source: func(capacity float64) workload.Source {
				base := workload.RateForUtilization(capacity, util)
				burst := base * 2.2
				if max := capacity * 0.95; burst > max {
					burst = max
				}
				period := duration / 9
				tr, err := workload.BurstTrace(base, burst, period, period/4, duration)
				if err != nil {
					panic(err)
				}
				return tr
			},
			Duration: duration,
			Seed:     seed,
		})
	}
	results, err := RunAll(scs)
	if err != nil {
		return nil, err
	}
	out := &QoSResult{ID: id, Title: title, QoS: qos}
	for i, p := range policies {
		res := results[i]
		run := QoSRun{Policy: p.Label, Result: res}
		run.PowerFraction = res.Trace.Get("power").Mean() / float64(res.PeakPower)
		if lat := res.Trace.Get("latency"); lat != nil {
			run.QoSFraction = lat.Mean() / qos.Seconds()
			for _, pt := range lat.Points {
				if pt.Value > qos.Seconds() {
					run.Violations++
				}
			}
		}
		out.Runs = append(out.Runs, run)
	}
	return out, nil
}

// Figure13 reproduces the Sirius power-saving comparison (Table 3 setup:
// 4 ASR + 2 IMM + 5 QA at 2.4 GHz, 2 s QoS, 10 s adjust interval).
func Figure13(seed int64) (*QoSResult, error) {
	return qosExperiment("figure13",
		"Sirius power saving while meeting the 2s QoS target",
		app.Sirius(), []int{4, 2, 5}, 2*time.Second, 10*time.Second, 0.40, 900*time.Second, seed)
}

// Figure14 reproduces the Web Search power-saving comparison (Table 3
// setup: 10 leaves + 1 aggregator at 2.4 GHz, 250 ms QoS, 2 s adjust
// interval).
func Figure14(seed int64) (*QoSResult, error) {
	return qosExperiment("figure14",
		"Web Search power saving while meeting the 250ms QoS target",
		app.WebSearch(), []int{10, 1}, 250*time.Millisecond, 2*time.Second, 0.30, 200*time.Second, seed)
}

// Headline aggregates the paper's abstract numbers: mean improvement across
// loads for Sirius and NLP, and the power saved vs Pegasus for Sirius and
// Web Search.
type Headline struct {
	SiriusAvgX, SiriusP99X float64
	NLPAvgX, NLPP99X       float64
	SiriusPowerSaved       float64 // PowerChief saving minus Pegasus saving
	SearchPowerSaved       float64
}

// ComputeHeadline derives the headline from already-run figures.
func ComputeHeadline(f10, f12 *Figure, f13, f14 *QoSResult) Headline {
	meanOf := func(f *Figure, label string) (avg, p99 float64) {
		n := 0
		for _, g := range f.Groups {
			for _, b := range g.Bars {
				if b.Label == label {
					avg += b.Avg
					p99 += b.P99
					n++
				}
			}
		}
		if n > 0 {
			avg /= float64(n)
			p99 /= float64(n)
		}
		return avg, p99
	}
	var h Headline
	h.SiriusAvgX, h.SiriusP99X = meanOf(f10, "PowerChief")
	h.NLPAvgX, h.NLPP99X = meanOf(f12, "PowerChief")
	saving := func(q *QoSResult, policy string) float64 {
		for _, r := range q.Runs {
			if r.Policy == policy {
				return 1 - r.PowerFraction
			}
		}
		return 0
	}
	h.SiriusPowerSaved = saving(f13, "powerchief") - saving(f13, "pegasus")
	h.SearchPowerSaved = saving(f14, "powerchief") - saving(f14, "pegasus")
	return h
}
