package harness

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"powerchief/internal/core"
)

// WriteFigure renders an improvement figure as a text table, one row per
// policy per load group — the textual equivalent of the paper's bar charts.
func WriteFigure(w io.Writer, f *Figure) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "load\tpolicy\tavg latency\t99th latency")
	for _, g := range f.Groups {
		for _, b := range g.Bars {
			fmt.Fprintf(tw, "%s\t%s\t%.1fx\t%.1fx\n", g.Label, b.Label, b.Avg, b.P99)
		}
	}
	return tw.Flush()
}

// WriteFigure2 renders the static single-stage boosting sweep.
func WriteFigure2(w io.Writer, f *Figure2Result) error {
	if _, err := fmt.Fprintln(w, "== figure2: Normalized Sirius latency when boosting one stage (13.56W budget) =="); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "configuration\tnormalized latency")
	for _, r := range f.Rows {
		fmt.Fprintf(tw, "%s\t%.2f\n", r.Label, r.Normalized)
	}
	return tw.Flush()
}

// WriteQoS renders a power-saving experiment (Figures 13/14).
func WriteQoS(w io.Writer, q *QoSResult) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", q.ID, q.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tlatency/QoS\tpower/peak\tpower saved\tQoS violations\tinstances withdrawn")
	for _, r := range q.Runs {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.0f%%\t%d\t%d\n",
			r.Policy, r.QoSFraction, r.PowerFraction, (1-r.PowerFraction)*100, r.Violations, r.Result.Withdrawn)
	}
	return tw.Flush()
}

// WriteRuntimeTrace renders one Figure 11 run's time series as CSV: instance
// counts per stage and per-instance frequencies over the run.
func WriteRuntimeTrace(w io.Writer, r *Result) error {
	if _, err := fmt.Fprintf(w, "# %s (%s)\n", r.Scenario, r.Policy); err != nil {
		return err
	}
	return r.Trace.WriteCSV(w)
}

// WriteHeadline renders the abstract's aggregate numbers.
func WriteHeadline(w io.Writer, h Headline) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "== headline: paper abstract numbers (paper → measured) ==")
	fmt.Fprintf(tw, "Sirius avg improvement\t20.3x →\t%.1fx\n", h.SiriusAvgX)
	fmt.Fprintf(tw, "Sirius 99%% improvement\t13.3x →\t%.1fx\n", h.SiriusP99X)
	fmt.Fprintf(tw, "NLP avg improvement\t32.4x →\t%.1fx\n", h.NLPAvgX)
	fmt.Fprintf(tw, "NLP 99%% improvement\t19.4x →\t%.1fx\n", h.NLPP99X)
	fmt.Fprintf(tw, "Sirius power saved vs Pegasus\t23%% →\t%.0f%%\n", h.SiriusPowerSaved*100)
	fmt.Fprintf(tw, "Web Search power saved vs Pegasus\t33%% →\t%.0f%%\n", h.SearchPowerSaved*100)
	return tw.Flush()
}

// WriteResult renders one run's summary line.
func WriteResult(w io.Writer, r *Result) error {
	_, err := fmt.Fprintf(w,
		"%s [%s]: completed %d/%d, latency avg=%v p50=%v p99=%v, avg power=%.2fW (peak %.2fW), freq-boosts=%d, inst-boosts=%d, withdrawn=%d\n",
		r.Scenario, r.Policy, r.Completed, r.Submitted,
		r.Latency.Mean().Round(time.Millisecond), r.Latency.P50().Round(time.Millisecond),
		r.Latency.P99().Round(time.Millisecond),
		float64(r.AvgPower), float64(r.PeakPower),
		r.Boosts[core.BoostFrequency], r.Boosts[core.BoostInstance], r.Withdrawn)
	return err
}
