package harness

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"powerchief/internal/app"
	"powerchief/internal/core"
	"powerchief/internal/stage"
	"powerchief/internal/workload"
)

// Ablation studies for the design choices DESIGN.md calls out: the latency
// metric (Equation 1 vs the Table 1 historical metrics), instance withdraw,
// the split-clone refinement, the balance threshold, and the dispatch
// policy. Each driver holds everything else at the Table 2 setup and varies
// exactly one choice.

// AblationRow is one variant's outcome.
type AblationRow struct {
	Label    string
	Avg      float64 // average-latency improvement over baseline (×)
	P99      float64
	AvgPower float64 // watts
}

// AblationResult is one study.
type AblationResult struct {
	ID    string
	Title string
	Rows  []AblationRow
}

// runVariants executes the baseline once and every variant against the same
// arrival process.
func runVariants(id, title string, base Scenario, variants []struct {
	Label string
	Mut   func(*Scenario)
}) (*AblationResult, error) {
	baseSc := base
	baseSc.Name = id + "-baseline"
	baseSc.Policy = nil
	baseline, err := Run(baseSc)
	if err != nil {
		return nil, err
	}
	out := &AblationResult{ID: id, Title: title}
	for _, v := range variants {
		sc := base
		sc.Name = id + "-" + v.Label
		v.Mut(&sc)
		res, err := Run(sc)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", id, v.Label, err)
		}
		avg, p99 := Improvement(baseline, res)
		out.Rows = append(out.Rows, AblationRow{
			Label: v.Label, Avg: avg, P99: p99, AvgPower: float64(res.AvgPower),
		})
	}
	return out, nil
}

// siriusHigh is the shared base scenario of the ablations.
func siriusHigh(seed int64) Scenario {
	return mitigationScenario(app.Sirius(), "ablation", workload.High, nil, seed)
}

// AblationMetric compares PowerChief driven by Equation 1 against the purely
// historical Table 1 metrics (§4.2's claim: history alone misidentifies the
// bottleneck under bursts).
func AblationMetric(seed int64) (*AblationResult, error) {
	mk := func(m core.Metric) func(*Scenario) {
		return func(sc *Scenario) {
			sc.Policy = func() core.Policy {
				cfg := core.DefaultConfig()
				cfg.Metric = m
				return core.NewPowerChief(cfg)
			}
		}
	}
	return runVariants("ablation-metric",
		"Bottleneck metric: Equation 1 vs Table 1 historical metrics (Sirius, high load)",
		siriusHigh(seed), []struct {
			Label string
			Mut   func(*Scenario)
		}{
			{"expected-delay (Eq.1)", mk(core.MetricExpectedDelay)},
			{"avg-processing", mk(core.MetricAvgProcessing)},
			{"avg-queuing", mk(core.MetricAvgQueuing)},
			{"avg-serving", mk(core.MetricAvgServing)},
		})
}

// AblationWithdraw isolates instance withdraw (§6.2) under the phased
// Figure 11 load, where the all-at-floor jam makes withdraw matter.
func AblationWithdraw(seed int64) (*AblationResult, error) {
	base := siriusHigh(seed)
	base.Source = func(capacity float64) workload.Source {
		return workload.Figure11Trace(workload.RateForUtilization(capacity, workload.High.Utilization()))
	}
	mk := func(interval time.Duration) func(*Scenario) {
		return func(sc *Scenario) {
			sc.Policy = func() core.Policy {
				cfg := core.DefaultConfig()
				cfg.WithdrawInterval = interval
				return core.NewPowerChief(cfg)
			}
		}
	}
	return runVariants("ablation-withdraw",
		"Instance withdraw on/off (Sirius, phased high load)",
		base, []struct {
			Label string
			Mut   func(*Scenario)
		}{
			{"withdraw-150s", mk(150 * time.Second)},
			{"withdraw-off", mk(0)},
		})
}

// AblationSplitClone isolates the split-clone refinement (DESIGN.md §5b) at
// medium load, where the literal algorithm deadlocks after an early
// frequency overshoot.
func AblationSplitClone(seed int64) (*AblationResult, error) {
	base := siriusHigh(seed)
	base.Source = constantLoad(workload.Medium)
	mk := func(disable bool) func(*Scenario) {
		return func(sc *Scenario) {
			sc.Policy = func() core.Policy {
				cfg := core.DefaultConfig()
				cfg.DisableSplitClone = disable
				return core.NewPowerChief(cfg)
			}
		}
	}
	return runVariants("ablation-splitclone",
		"Split-clone refinement on/off (Sirius, medium load)",
		base, []struct {
			Label string
			Mut   func(*Scenario)
		}{
			{"split-clone", mk(false)},
			{"literal-alg1", mk(true)},
		})
}

// AblationBalanceThreshold sweeps the oscillation guard of §8.1.
func AblationBalanceThreshold(seed int64) (*AblationResult, error) {
	mk := func(th time.Duration) func(*Scenario) {
		return func(sc *Scenario) {
			sc.Policy = func() core.Policy {
				cfg := core.DefaultConfig()
				cfg.BalanceThreshold = th
				return core.NewPowerChief(cfg)
			}
		}
	}
	return runVariants("ablation-threshold",
		"Balance threshold sweep (Sirius, high load)",
		siriusHigh(seed), []struct {
			Label string
			Mut   func(*Scenario)
		}{
			{"0s", mk(0)},
			{"1s (Table 2)", mk(time.Second)},
			{"5s", mk(5 * time.Second)},
		})
}

// AblationDispatcher compares the stage dispatch policies under PowerChief.
func AblationDispatcher(seed int64) (*AblationResult, error) {
	base := siriusHigh(seed)
	mk := func(d func() stage.Dispatcher) func(*Scenario) {
		return func(sc *Scenario) {
			sc.Dispatcher = d
			sc.Policy = func() core.Policy { return core.NewPowerChief(core.DefaultConfig()) }
		}
	}
	return runVariants("ablation-dispatcher",
		"Dispatch policy under PowerChief (Sirius, high load)",
		base, []struct {
			Label string
			Mut   func(*Scenario)
		}{
			{"join-shortest-queue", mk(func() stage.Dispatcher { return stage.JoinShortestQueue{} })},
			{"round-robin", mk(func() stage.Dispatcher { return &stage.RoundRobin{} })},
			{"least-expected-delay", mk(func() stage.Dispatcher { return stage.LeastExpectedDelay{} })},
		})
}

// WriteAblation renders a study as a text table.
func WriteAblation(w io.Writer, a *AblationResult) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", a.ID, a.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\tavg improvement\tp99 improvement\tavg power")
	for _, r := range a.Rows {
		fmt.Fprintf(tw, "%s\t%.1fx\t%.1fx\t%.2fW\n", r.Label, r.Avg, r.P99, r.AvgPower)
	}
	return tw.Flush()
}

// TailRow is one policy's latency distribution.
type TailRow struct {
	Policy                        string
	P50, P90, P95, P99, P999, Max time.Duration
}

// TailResult is the tail-latency analysis the paper lists as future work
// ("analyze the tail latency behavior under the power constraint in more
// depth", §10).
type TailResult struct {
	Rows []TailRow
}

// TailAnalysis measures the full end-to-end latency distribution of every
// policy under high load and the power constraint.
func TailAnalysis(seed int64) (*TailResult, error) {
	out := &TailResult{}
	policies := append([]struct {
		Label string
		New   func() core.Policy
	}{{"Baseline", func() core.Policy { return core.Static{} }}}, mitigationPolicies()...)
	for _, p := range policies {
		res, err := Run(mitigationScenario(app.Sirius(), "tail-"+p.Label, workload.High, p.New, seed))
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, TailRow{
			Policy: p.Label,
			P50:    res.Latency.Percentile(0.50),
			P90:    res.Latency.Percentile(0.90),
			P95:    res.Latency.Percentile(0.95),
			P99:    res.Latency.Percentile(0.99),
			P999:   res.Latency.Percentile(0.999),
			Max:    res.Latency.Max(),
		})
	}
	return out, nil
}

// WriteTail renders the tail analysis.
func WriteTail(w io.Writer, t *TailResult) error {
	if _, err := fmt.Fprintln(w, "== tail: end-to-end latency distribution (Sirius, high load, 13.56W) =="); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tp50\tp90\tp95\tp99\tp99.9\tmax")
	rnd := func(d time.Duration) time.Duration { return d.Round(time.Millisecond) }
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%s\t%v\t%v\t%v\t%v\t%v\t%v\n",
			r.Policy, rnd(r.P50), rnd(r.P90), rnd(r.P95), rnd(r.P99), rnd(r.P999), rnd(r.Max))
	}
	return tw.Flush()
}
