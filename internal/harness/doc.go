// Package harness assembles full experiments: it wires an application, a
// load source, a chip and a control policy onto the discrete-event engine,
// runs the scenario, and collects the metrics the paper's evaluation reports
// — end-to-end average and 99th-percentile latency, power draw over time,
// and the runtime behaviour (instance counts and frequencies) behind the
// figures. Every figure and table of the evaluation section has a driver in
// experiments.go built on this runner.
//
// Entry points: Run executes one Scenario; RunAll fans a scenario list
// across goroutines (each scenario owns a private engine and rng, so the
// results are bit-identical to a sequential run); Figure2 through Figure14,
// TailAnalysis, the Ablation* drivers and BudgetSweep reproduce the §8
// experiments that cmd/experiments writes under results/. EXPERIMENTS.md
// records the outputs against the paper's numbers.
package harness
