package harness

import (
	"strings"
	"testing"

	"powerchief/internal/app"
	"powerchief/internal/core"
	"powerchief/internal/telemetry"
	"powerchief/internal/workload"
)

// An audited PowerChief scenario leaves a decision timeline: bottleneck
// identifications with their Equation 1 inputs and the boost decisions that
// followed, in sequence order, renderable as text.
func TestScenarioAuditProducesDecisionTimeline(t *testing.T) {
	audit := telemetry.NewAuditLog(0)
	sc := mitigationScenario(app.Sirius(), "audited", workload.High, func() core.Policy {
		return core.NewPowerChief(core.DefaultConfig())
	}, 7)
	sc.Audit = audit
	if _, err := Run(sc); err != nil {
		t.Fatal(err)
	}
	if audit.Len() == 0 {
		t.Fatal("audited run recorded no events")
	}
	kinds := map[telemetry.EventKind]int{}
	var prevSeq uint64
	for _, e := range audit.Events() {
		if e.Seq <= prevSeq {
			t.Fatalf("events out of order: seq %d after %d", e.Seq, prevSeq)
		}
		prevSeq = e.Seq
		kinds[e.Kind]++
		if e.Kind == telemetry.EventIdentify {
			if e.Instance == "" || e.Metric <= 0 {
				t.Errorf("identify event missing Equation 1 inputs: %+v", e)
			}
		}
	}
	if kinds[telemetry.EventIdentify] == 0 {
		t.Error("no bottleneck identifications in the timeline")
	}
	if kinds[telemetry.EventBoostFreq]+kinds[telemetry.EventBoostInst] == 0 {
		t.Errorf("no boost decisions in the timeline: %v", kinds)
	}
	var sb strings.Builder
	if err := telemetry.WriteDecisions(&sb, audit.Events()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "identify") {
		t.Errorf("rendered timeline has no identify lines:\n%s", sb.String())
	}
}

// The acceptance property for query tracing on the DES engine: every sampled
// trace's per-instance queue/serve spans sum exactly to the query's
// end-to-end latency (the engine's single clock makes records contiguous).
func TestScenarioTracerSpansSumToLatency(t *testing.T) {
	tracer := telemetry.NewTracer(telemetry.TracerOptions{Sample: 10})
	sc := mitigationScenario(app.Sirius(), "traced", workload.Medium, func() core.Policy {
		return core.NewPowerChief(core.DefaultConfig())
	}, 7)
	sc.Tracer = tracer
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	seen, kept, dropped := tracer.Stats()
	if seen != uint64(res.Completed) {
		t.Errorf("tracer saw %d queries, run completed %d", seen, res.Completed)
	}
	if kept == 0 {
		t.Fatal("sampling kept no traces")
	}
	if want := seen / 10; kept != want {
		t.Errorf("kept %d of %d at sample 10, want %d", kept, seen, want)
	}
	_ = dropped
	for _, tr := range tracer.Traces() {
		if tr.Truncated {
			continue // spans past the depth cap are missing by design
		}
		if len(tr.Spans) == 0 {
			t.Fatalf("trace %d has no spans", tr.ID)
		}
		if got := tr.SpanTotal(); got != tr.Latency {
			t.Errorf("trace %d spans sum to %v, latency %v", tr.ID, got, tr.Latency)
		}
		for _, sp := range tr.Spans {
			if sp.Instance == "" || sp.Stage == "" {
				t.Errorf("trace %d span missing identity: %+v", tr.ID, sp)
			}
			if sp.End < sp.Start {
				t.Errorf("trace %d span ends before it starts: %+v", tr.ID, sp)
			}
		}
	}
}

// A scenario without telemetry attached behaves identically to one with a
// disabled tracer and no audit — the hooks are nil-safe no-ops.
func TestScenarioTelemetryDisabledMatchesBaseline(t *testing.T) {
	run := func(attach bool) *Result {
		sc := mitigationScenario(app.Sirius(), "base", workload.Medium, func() core.Policy {
			return core.NewPowerChief(core.DefaultConfig())
		}, 11)
		if attach {
			var tracer *telemetry.Tracer
			sc.Tracer = tracer // typed nil: disabled
		}
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(false), run(true)
	if a.Completed != b.Completed || a.Latency.Mean() != b.Latency.Mean() {
		t.Errorf("disabled telemetry changed the run: %d/%v vs %d/%v",
			a.Completed, a.Latency.Mean(), b.Completed, b.Latency.Mean())
	}
}
