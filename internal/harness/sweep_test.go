package harness

import (
	"strings"
	"testing"

	"powerchief/internal/app"
	"powerchief/internal/cmp"
	"powerchief/internal/workload"
)

func TestBudgetSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	res, err := BudgetSweep(app.Sirius(), workload.High, DefaultSweepBudgets(), 7)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string][]SweepPoint{}
	for _, p := range res.Points {
		byPolicy[p.Policy] = append(byPolicy[p.Policy], p)
	}
	if len(byPolicy["baseline"]) != len(byPolicy["powerchief"]) {
		t.Fatal("asymmetric sweep")
	}
	// At every budget PowerChief's average latency is at most the
	// baseline's (small tolerance for stochastic ties at huge budgets).
	for i := range byPolicy["baseline"] {
		b, pc := byPolicy["baseline"][i], byPolicy["powerchief"][i]
		t.Logf("%.1fW: baseline %v vs powerchief %v", float64(b.Budget), b.Avg, pc.Avg)
		if float64(pc.Avg) > 1.15*float64(b.Avg) {
			t.Errorf("at %.1fW PowerChief (%v) worse than baseline (%v)", float64(b.Budget), pc.Avg, b.Avg)
		}
		// Budget invariant: average draw never exceeds the budget.
		if pc.AvgPower > b.Budget+1e-6 {
			t.Errorf("at %.1fW PowerChief drew %.2fW", float64(b.Budget), float64(pc.AvgPower))
		}
	}
	// Latency improves (weakly) as the budget grows, for both policies.
	for name, pts := range byPolicy {
		for i := 1; i < len(pts); i++ {
			if float64(pts[i].Avg) > 1.5*float64(pts[i-1].Avg) {
				t.Errorf("%s: latency rose sharply with more budget: %v → %v at %.1fW",
					name, pts[i-1].Avg, pts[i].Avg, float64(pts[i].Budget))
			}
		}
	}
	// PowerChief's advantage is largest at tight budgets.
	first := float64(byPolicy["baseline"][0].Avg) / float64(byPolicy["powerchief"][0].Avg)
	if first < 1.5 {
		t.Errorf("tight-budget improvement only %.2fx", first)
	}
}

func TestBudgetSweepInfeasible(t *testing.T) {
	if _, err := BudgetSweep(app.Sirius(), workload.Low, []cmp.Watts{1}, 1); err == nil {
		t.Error("all-infeasible sweep accepted")
	}
}

func TestWriteSweep(t *testing.T) {
	s := &SweepResult{App: "sirius", Load: workload.High, Points: []SweepPoint{
		{Budget: 10, Policy: "baseline", Avg: 1e9, P99: 2e9, AvgPower: 9.5},
	}}
	var sb strings.Builder
	if err := WriteSweep(&sb, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "10.00W") {
		t.Errorf("sweep table = %q", sb.String())
	}
}
