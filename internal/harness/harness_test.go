package harness

import (
	"strings"
	"testing"
	"time"

	"powerchief/internal/app"
	"powerchief/internal/cmp"
	"powerchief/internal/config"
	"powerchief/internal/core"
	"powerchief/internal/query"
	"powerchief/internal/stage"
	"powerchief/internal/workload"
)

func TestRunValidation(t *testing.T) {
	base := Scenario{App: app.Sirius(), Level: cmp.MidLevel, Budget: 13.56}
	if _, err := Run(base); err == nil {
		t.Error("zero duration accepted")
	}
	bad := base
	bad.Duration = time.Second
	bad.StageLevels = []cmp.Level{cmp.MidLevel} // 1 level for 3 stages
	if _, err := Run(bad); err == nil {
		t.Error("stage-level shape mismatch accepted")
	}
	empty := Scenario{Duration: time.Second}
	if _, err := Run(empty); err == nil {
		t.Error("empty app accepted")
	}
	tiny := base
	tiny.Duration = time.Second
	tiny.Budget = 1 // cannot host the initial configuration
	if _, err := Run(tiny); err == nil {
		t.Error("infeasible budget accepted")
	}
}

func TestRunDerivesBudgetFromConfiguration(t *testing.T) {
	res, err := Run(Scenario{
		App: app.Sirius(), Level: cmp.MidLevel, Budget: 0,
		Source: constantLoad(workload.Low), Duration: 60 * time.Second, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * cmp.DefaultModel().Power(cmp.MidLevel)
	if !cmp.ApproxEqual(res.PeakPower, want) {
		t.Errorf("derived peak = %v, want %v", res.PeakPower, want)
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() *Result {
		res, err := Run(mitigationScenario(app.Sirius(), "det", workload.High, func() core.Policy {
			return core.NewPowerChief(core.DefaultConfig())
		}, 123))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Latency.Mean() != b.Latency.Mean() ||
		a.Latency.P99() != b.Latency.P99() || a.AvgPower != b.AvgPower {
		t.Errorf("same seed diverged: %v vs %v (%d vs %d queries)",
			a.Latency.Mean(), b.Latency.Mean(), a.Completed, b.Completed)
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	r1, err := Run(mitigationScenario(app.Sirius(), "s1", workload.High, nil, 1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(mitigationScenario(app.Sirius(), "s2", workload.High, nil, 2))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Completed == r2.Completed && r1.Latency.Mean() == r2.Latency.Mean() {
		t.Error("different seeds produced identical runs")
	}
}

func TestRunDrainCompletesQueries(t *testing.T) {
	// Even under overload, the drain phase (generator stopped) lets all
	// submitted queries finish within the drain window for this short run.
	res, err := Run(mitigationScenario(app.Sirius(), "drain", workload.High, nil, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Submitted {
		t.Errorf("completed %d of %d after drain", res.Completed, res.Submitted)
	}
}

func TestRunRecordsTraceSeries(t *testing.T) {
	res, err := Run(mitigationScenario(app.Sirius(), "trace", workload.Medium, func() core.Policy {
		return core.NewPowerChief(core.DefaultConfig())
	}, 5))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"power", "latency", "instances:ASR", "instances:QA", "freq:QA_1"} {
		if res.Trace.Get(name) == nil {
			t.Errorf("missing trace series %q", name)
		}
	}
	// Power trace never exceeds the budget.
	for _, p := range res.Trace.Get("power").Points {
		if p.Value > 13.56+1e-6 {
			t.Fatalf("power sample %v exceeds the budget", p.Value)
		}
	}
	var sb strings.Builder
	if err := WriteRuntimeTrace(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "time_s,power") {
		t.Error("trace CSV header missing")
	}
}

func TestRendererOutputs(t *testing.T) {
	fig := &Figure{ID: "f", Title: "t", Groups: []BarGroup{
		{Label: "low", Bars: []Bar{{Label: "X", Avg: 2.5, P99: 3.5}}},
	}}
	var sb strings.Builder
	if err := WriteFigure(&sb, fig); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2.5x") {
		t.Errorf("figure table = %q", sb.String())
	}
	sb.Reset()
	if err := WriteFigure2(&sb, &Figure2Result{Rows: []Figure2Row{{Label: "b", Normalized: 0.5}}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0.50") {
		t.Errorf("figure2 table = %q", sb.String())
	}
	sb.Reset()
	q := &QoSResult{ID: "q", Title: "t", QoS: time.Second, Runs: []QoSRun{
		{Policy: "p", QoSFraction: 0.5, PowerFraction: 0.6, Result: &Result{}},
	}}
	if err := WriteQoS(&sb, q); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "40%") {
		t.Errorf("qos table = %q", sb.String())
	}
	sb.Reset()
	if err := WriteHeadline(&sb, Headline{SiriusAvgX: 20}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "20.0x") {
		t.Errorf("headline = %q", sb.String())
	}
}

func TestObserveHookReceivesRecords(t *testing.T) {
	sc := mitigationScenario(app.Sirius(), "observe", workload.Low, nil, 9)
	sc.Duration = 60 * time.Second
	seen := 0
	sc.Observe = func(q *query.Query) {
		seen++
		if len(q.Records) != 3 {
			t.Errorf("query %d carried %d records, want 3", q.ID, len(q.Records))
		}
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(seen) != res.Completed {
		t.Errorf("observed %d of %d completions", seen, res.Completed)
	}
}

func TestFromConfigRoundTrip(t *testing.T) {
	e := config.MitigationSetup("sirius", "powerchief", "high", 7)
	e.Duration = config.Duration(120 * time.Second)
	sc, err := FromConfig(e)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Budget != 13.56 || sc.Level != cmp.MidLevel || sc.AdjustInterval != 25*time.Second {
		t.Errorf("scenario fields wrong: %+v", sc)
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "powerchief" || res.Completed == 0 {
		t.Errorf("run from config: policy=%s completed=%d", res.Policy, res.Completed)
	}
	// Every policy name materializes.
	for _, p := range []string{"baseline", "freq-boost", "inst-boost", "pegasus", "saver"} {
		e := config.MitigationSetup("nlp", p, "low", 1)
		if p == "pegasus" || p == "saver" {
			e.QoS = config.Duration(2 * time.Second)
		}
		if _, err := FromConfig(e); err != nil {
			t.Errorf("FromConfig(%s): %v", p, err)
		}
	}
	bad := e
	bad.App = "doom"
	if _, err := FromConfig(bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestDispatcherOptionApplied(t *testing.T) {
	// A round-robin dispatcher spreads queries evenly even when queue
	// lengths differ — observable through per-instance served counts only
	// indirectly; here we simply assert the option survives a full run.
	sc := mitigationScenario(app.Sirius(), "rr", workload.Medium, nil, 5)
	sc.Instances = []int{2, 1, 2}
	sc.Budget = 40
	sc.Dispatcher = func() stage.Dispatcher { return &stage.RoundRobin{} }
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no queries completed with a custom dispatcher")
	}
}
