package harness

import (
	"testing"
	"time"

	"powerchief/internal/app"
	"powerchief/internal/arbiter"
	"powerchief/internal/core"
	"powerchief/internal/workload"
)

// twoTenantScenario is the controlled fixture: one nearly idle tenant and
// one overloaded tenant with identical pipelines, so arbitration has an
// unambiguous right answer (move watts to the busy one).
func twoTenantScenario(arb func() core.Policy, seed int64) MultiScenario {
	tenant := func(name string, load float64) Tenant {
		return Tenant{
			Name: name, App: app.WebSearch(),
			Instances:      []int{1, 1},
			Level:          6,
			QoS:            500 * time.Millisecond,
			AdjustInterval: 10 * time.Second,
			Source: func(capacity float64) workload.Source {
				return workload.Constant(load * capacity)
			},
		}
	}
	return MultiScenario{
		Name:            "two-tenant-test",
		Tenants:         []Tenant{tenant("idle", 0.1), tenant("busy", 2.5)},
		Arbiter:         arb,
		ArbiterInterval: 20 * time.Second,
		Duration:        300 * time.Second,
		Seed:            seed,
	}
}

func proportionalArbiter() core.Policy { return arbiter.New(arbiter.Proportional{}) }

// TestRunMultiConservesBudgetEveryEpoch is the hierarchy acceptance
// property: across every arbiter epoch Σ per-tenant grants stays within the
// chip budget, and the arbitration visibly moves watts toward the
// overloaded tenant.
func TestRunMultiConservesBudgetEveryEpoch(t *testing.T) {
	res, err := RunMulti(twoTenantScenario(proportionalArbiter, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("domain invariant violated after %d arbiter epochs", res.Violations)
	}
	if res.ArbiterEpochs < 5 {
		t.Fatalf("arbiter ran only %d epochs", res.ArbiterEpochs)
	}
	if res.MaxGranted > res.Budget+1e-6 {
		t.Fatalf("Σ grants peaked at %.4fW over the %.4fW budget", float64(res.MaxGranted), float64(res.Budget))
	}
	idle, busy := res.Tenants[0], res.Tenants[1]
	if idle.Name != "idle" || busy.Name != "busy" {
		t.Fatalf("tenant order changed: %q, %q", idle.Name, busy.Name)
	}
	if busy.FinalGrant <= busy.InitialGrant {
		t.Fatalf("arbitration never raised the busy tenant: %.2fW -> %.2fW",
			float64(busy.InitialGrant), float64(busy.FinalGrant))
	}
	if idle.FinalGrant >= idle.InitialGrant {
		t.Fatalf("arbitration never reclaimed from the idle tenant: %.2fW -> %.2fW",
			float64(idle.InitialGrant), float64(idle.FinalGrant))
	}
	if sum := idle.FinalGrant + busy.FinalGrant; sum > res.Budget+1e-6 {
		t.Fatalf("final split %.4fW exceeds budget %.4fW", float64(sum), float64(res.Budget))
	}
	if idle.Completed == 0 || busy.Completed == 0 {
		t.Fatalf("tenants completed %d/%d queries", idle.Completed, busy.Completed)
	}
}

// TestRunMultiStaticBaselineKeepsSplit pins the nil-Arbiter contract: the
// initial weight-proportional split never moves.
func TestRunMultiStaticBaselineKeepsSplit(t *testing.T) {
	res, err := RunMulti(twoTenantScenario(nil, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Arbiter != "static-split" {
		t.Fatalf("baseline named %q", res.Arbiter)
	}
	if res.ArbiterEpochs != 0 || res.Violations != 0 {
		t.Fatalf("baseline ran %d arbiter epochs, %d violations", res.ArbiterEpochs, res.Violations)
	}
	for _, tr := range res.Tenants {
		if tr.FinalGrant != tr.InitialGrant {
			t.Fatalf("tenant %s drifted from %.2fW to %.2fW without an arbiter",
				tr.Name, float64(tr.InitialGrant), float64(tr.FinalGrant))
		}
	}
}

// TestRunMultiArbitrationBeatsStaticSplit is the headline comparison: same
// arrivals, same budget — re-granting QoS headroom to the overloaded tenant
// must beat the frozen split on combined P99.
func TestRunMultiArbitrationBeatsStaticSplit(t *testing.T) {
	static, err := RunMulti(twoTenantScenario(nil, 1))
	if err != nil {
		t.Fatal(err)
	}
	arb, err := RunMulti(twoTenantScenario(proportionalArbiter, 1))
	if err != nil {
		t.Fatal(err)
	}
	if arb.Combined.P99() >= static.Combined.P99() {
		t.Fatalf("arbitration did not improve combined P99: %v vs static %v",
			arb.Combined.P99(), static.Combined.P99())
	}
	if _, p99 := CombinedImprovement(static, arb); p99 <= 1 {
		t.Fatalf("improvement ratio %.3f not above 1", p99)
	}
}

// TestRunMultiDeterministic: same scenario, same seed, same numbers.
func TestRunMultiDeterministic(t *testing.T) {
	a, err := RunMulti(twoTenantScenario(proportionalArbiter, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMulti(twoTenantScenario(proportionalArbiter, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Combined.Count() != b.Combined.Count() || a.Combined.P99() != b.Combined.P99() {
		t.Fatalf("runs diverged: %d/%v vs %d/%v",
			a.Combined.Count(), a.Combined.P99(), b.Combined.Count(), b.Combined.P99())
	}
	for i := range a.Tenants {
		if a.Tenants[i].FinalGrant != b.Tenants[i].FinalGrant {
			t.Fatalf("tenant %s final grant diverged: %v vs %v",
				a.Tenants[i].Name, a.Tenants[i].FinalGrant, b.Tenants[i].FinalGrant)
		}
	}
}

// TestRunMultiRollbackPreservesSplit wires an unshedable cut: the idle
// tenant sits at the DVFS floor, and an explicit Floor below its minimum
// draw makes every arbiter epoch demand a cut its actuator must refuse. The
// executor rolls the plan back, so the split never moves and the busy
// tenant's increase (planned after the decrease) never lands half-applied.
func TestRunMultiRollbackPreservesSplit(t *testing.T) {
	sc := twoTenantScenario(proportionalArbiter, 3)
	sc.Tenants[0].Level = 0 // idle tenant already at the ladder floor
	sc.Floor = 0.5          // below the idle tenant's minimum draw
	sc.Hysteresis = 0.01
	res, err := RunMulti(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.ArbiterEpochs < 5 {
		t.Fatalf("arbiter ran only %d epochs", res.ArbiterEpochs)
	}
	if res.Violations != 0 {
		t.Fatalf("%d invariant violations during rollbacks", res.Violations)
	}
	for _, tr := range res.Tenants {
		if tr.FinalGrant != tr.InitialGrant {
			t.Fatalf("rollback leaked: tenant %s moved from %.4fW to %.4fW",
				tr.Name, float64(tr.InitialGrant), float64(tr.FinalGrant))
		}
	}
}

// TestBenchTenantScenario smoke-runs the recorded benchmark shape under
// both modes and checks the acceptance ordering on combined P99.
func TestBenchTenantScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("long DES run")
	}
	sc := BenchTenantScenario(42)
	static, err := RunMulti(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc = BenchTenantScenario(42)
	sc.Arbiter = proportionalArbiter
	arb, err := RunMulti(sc)
	if err != nil {
		t.Fatal(err)
	}
	if arb.Violations != 0 {
		t.Fatalf("%d invariant violations", arb.Violations)
	}
	if arb.Combined.P99() >= static.Combined.P99() {
		t.Fatalf("bench scenario: arbitration P99 %v not below static %v",
			arb.Combined.P99(), static.Combined.P99())
	}
}

// TestRunMultiTenantChurn is the membership acceptance property: evicting a
// tenant mid-run returns its grant to the root, re-admitting it lands a
// grant of at least the floor (reclaimed from the richest tenant if the
// arbiter granted the headroom away), and the hierarchy invariant holds
// across every epoch and both transitions.
func TestRunMultiTenantChurn(t *testing.T) {
	churned := twoTenantScenario(proportionalArbiter, 5)
	churned.Churn = []ChurnEvent{
		{At: 100 * time.Second, Tenant: "idle"},
		{At: 200 * time.Second, Tenant: "idle", Admit: true},
	}
	res, err := RunMulti(churned)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("domain invariant violated %d times across churn", res.Violations)
	}
	if res.MaxGranted > res.Budget+1e-6 {
		t.Fatalf("Σ grants peaked at %.4fW over the %.4fW budget", float64(res.MaxGranted), float64(res.Budget))
	}
	if len(res.Churn) != 2 {
		t.Fatalf("recorded %d churn events, want 2: %+v", len(res.Churn), res.Churn)
	}
	evict, admit := res.Churn[0], res.Churn[1]
	if evict.Admit || evict.Tenant != "idle" || evict.Watts <= 0 {
		t.Fatalf("eviction record %+v", evict)
	}
	if !admit.Admit || admit.Tenant != "idle" || admit.Watts < res.Floor-1e-9 {
		t.Fatalf("re-admission record %+v below the %.2fW floor", admit, float64(res.Floor))
	}
	idle := res.Tenants[0]
	if idle.Name != "idle" {
		t.Fatalf("tenant order changed: %q", idle.Name)
	}
	if idle.FinalGrant < res.Floor-1e-9 {
		t.Fatalf("re-admitted tenant ended at %.2fW, below the %.2fW floor",
			float64(idle.FinalGrant), float64(res.Floor))
	}
	// The grant trace shows the evicted window: the ledger held nothing for
	// the tenant between the transitions.
	sawZero := false
	for _, p := range res.Trace.Get("grant:idle").Points {
		if p.At > 100*time.Second && p.At < 200*time.Second && p.Value == 0 {
			sawZero = true
		}
	}
	if !sawZero {
		t.Fatal("grant trace never showed the evicted tenant at 0W")
	}

	// Arrivals really paused: the churned run submits fewer idle-tenant
	// queries than the same seed without churn.
	baseline, err := RunMulti(twoTenantScenario(proportionalArbiter, 5))
	if err != nil {
		t.Fatal(err)
	}
	if idle.Submitted >= baseline.Tenants[0].Submitted {
		t.Fatalf("eviction did not pause arrivals: %d submitted vs %d without churn",
			idle.Submitted, baseline.Tenants[0].Submitted)
	}
	if baseline.Violations != 0 {
		t.Fatalf("baseline run violated the invariant %d times", baseline.Violations)
	}
}

// TestRunMultiChurnDeterministic: churn transitions are engine events, so
// the same scenario and seed reproduce the same numbers.
func TestRunMultiChurnDeterministic(t *testing.T) {
	scenario := func() MultiScenario {
		sc := twoTenantScenario(proportionalArbiter, 11)
		sc.Churn = []ChurnEvent{
			{At: 90 * time.Second, Tenant: "busy"},
			{At: 170 * time.Second, Tenant: "busy", Admit: true},
		}
		return sc
	}
	a, err := RunMulti(scenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMulti(scenario())
	if err != nil {
		t.Fatal(err)
	}
	if a.Combined.Count() != b.Combined.Count() || a.Combined.P99() != b.Combined.P99() {
		t.Fatalf("churned runs diverged: %d/%v vs %d/%v",
			a.Combined.Count(), a.Combined.P99(), b.Combined.Count(), b.Combined.P99())
	}
	for i := range a.Churn {
		if a.Churn[i] != b.Churn[i] {
			t.Fatalf("churn records diverged: %+v vs %+v", a.Churn[i], b.Churn[i])
		}
	}
}

// TestRunMultiChurnRejectsBadEvents pins the upfront validation: unknown
// tenants and out-of-horizon times fail before the run starts, and a
// double eviction surfaces as a run error.
func TestRunMultiChurnRejectsBadEvents(t *testing.T) {
	sc := twoTenantScenario(proportionalArbiter, 1)
	sc.Churn = []ChurnEvent{{At: 50 * time.Second, Tenant: "nobody"}}
	if _, err := RunMulti(sc); err == nil {
		t.Fatal("unknown churn tenant accepted")
	}
	sc = twoTenantScenario(proportionalArbiter, 1)
	sc.Churn = []ChurnEvent{{At: sc.Duration + time.Second, Tenant: "idle"}}
	if _, err := RunMulti(sc); err == nil {
		t.Fatal("out-of-horizon churn event accepted")
	}
	sc = twoTenantScenario(proportionalArbiter, 1)
	sc.Churn = []ChurnEvent{
		{At: 50 * time.Second, Tenant: "idle"},
		{At: 60 * time.Second, Tenant: "idle"},
	}
	if _, err := RunMulti(sc); err == nil {
		t.Fatal("double eviction did not fail the run")
	}
}
