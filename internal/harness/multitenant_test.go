package harness

import (
	"testing"
	"time"

	"powerchief/internal/app"
	"powerchief/internal/arbiter"
	"powerchief/internal/core"
	"powerchief/internal/workload"
)

// twoTenantScenario is the controlled fixture: one nearly idle tenant and
// one overloaded tenant with identical pipelines, so arbitration has an
// unambiguous right answer (move watts to the busy one).
func twoTenantScenario(arb func() core.Policy, seed int64) MultiScenario {
	tenant := func(name string, load float64) Tenant {
		return Tenant{
			Name: name, App: app.WebSearch(),
			Instances:      []int{1, 1},
			Level:          6,
			QoS:            500 * time.Millisecond,
			AdjustInterval: 10 * time.Second,
			Source: func(capacity float64) workload.Source {
				return workload.Constant(load * capacity)
			},
		}
	}
	return MultiScenario{
		Name:            "two-tenant-test",
		Tenants:         []Tenant{tenant("idle", 0.1), tenant("busy", 2.5)},
		Arbiter:         arb,
		ArbiterInterval: 20 * time.Second,
		Duration:        300 * time.Second,
		Seed:            seed,
	}
}

func proportionalArbiter() core.Policy { return arbiter.New(arbiter.Proportional{}) }

// TestRunMultiConservesBudgetEveryEpoch is the hierarchy acceptance
// property: across every arbiter epoch Σ per-tenant grants stays within the
// chip budget, and the arbitration visibly moves watts toward the
// overloaded tenant.
func TestRunMultiConservesBudgetEveryEpoch(t *testing.T) {
	res, err := RunMulti(twoTenantScenario(proportionalArbiter, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("domain invariant violated after %d arbiter epochs", res.Violations)
	}
	if res.ArbiterEpochs < 5 {
		t.Fatalf("arbiter ran only %d epochs", res.ArbiterEpochs)
	}
	if res.MaxGranted > res.Budget+1e-6 {
		t.Fatalf("Σ grants peaked at %.4fW over the %.4fW budget", float64(res.MaxGranted), float64(res.Budget))
	}
	idle, busy := res.Tenants[0], res.Tenants[1]
	if idle.Name != "idle" || busy.Name != "busy" {
		t.Fatalf("tenant order changed: %q, %q", idle.Name, busy.Name)
	}
	if busy.FinalGrant <= busy.InitialGrant {
		t.Fatalf("arbitration never raised the busy tenant: %.2fW -> %.2fW",
			float64(busy.InitialGrant), float64(busy.FinalGrant))
	}
	if idle.FinalGrant >= idle.InitialGrant {
		t.Fatalf("arbitration never reclaimed from the idle tenant: %.2fW -> %.2fW",
			float64(idle.InitialGrant), float64(idle.FinalGrant))
	}
	if sum := idle.FinalGrant + busy.FinalGrant; sum > res.Budget+1e-6 {
		t.Fatalf("final split %.4fW exceeds budget %.4fW", float64(sum), float64(res.Budget))
	}
	if idle.Completed == 0 || busy.Completed == 0 {
		t.Fatalf("tenants completed %d/%d queries", idle.Completed, busy.Completed)
	}
}

// TestRunMultiStaticBaselineKeepsSplit pins the nil-Arbiter contract: the
// initial weight-proportional split never moves.
func TestRunMultiStaticBaselineKeepsSplit(t *testing.T) {
	res, err := RunMulti(twoTenantScenario(nil, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Arbiter != "static-split" {
		t.Fatalf("baseline named %q", res.Arbiter)
	}
	if res.ArbiterEpochs != 0 || res.Violations != 0 {
		t.Fatalf("baseline ran %d arbiter epochs, %d violations", res.ArbiterEpochs, res.Violations)
	}
	for _, tr := range res.Tenants {
		if tr.FinalGrant != tr.InitialGrant {
			t.Fatalf("tenant %s drifted from %.2fW to %.2fW without an arbiter",
				tr.Name, float64(tr.InitialGrant), float64(tr.FinalGrant))
		}
	}
}

// TestRunMultiArbitrationBeatsStaticSplit is the headline comparison: same
// arrivals, same budget — re-granting QoS headroom to the overloaded tenant
// must beat the frozen split on combined P99.
func TestRunMultiArbitrationBeatsStaticSplit(t *testing.T) {
	static, err := RunMulti(twoTenantScenario(nil, 1))
	if err != nil {
		t.Fatal(err)
	}
	arb, err := RunMulti(twoTenantScenario(proportionalArbiter, 1))
	if err != nil {
		t.Fatal(err)
	}
	if arb.Combined.P99() >= static.Combined.P99() {
		t.Fatalf("arbitration did not improve combined P99: %v vs static %v",
			arb.Combined.P99(), static.Combined.P99())
	}
	if _, p99 := CombinedImprovement(static, arb); p99 <= 1 {
		t.Fatalf("improvement ratio %.3f not above 1", p99)
	}
}

// TestRunMultiDeterministic: same scenario, same seed, same numbers.
func TestRunMultiDeterministic(t *testing.T) {
	a, err := RunMulti(twoTenantScenario(proportionalArbiter, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMulti(twoTenantScenario(proportionalArbiter, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Combined.Count() != b.Combined.Count() || a.Combined.P99() != b.Combined.P99() {
		t.Fatalf("runs diverged: %d/%v vs %d/%v",
			a.Combined.Count(), a.Combined.P99(), b.Combined.Count(), b.Combined.P99())
	}
	for i := range a.Tenants {
		if a.Tenants[i].FinalGrant != b.Tenants[i].FinalGrant {
			t.Fatalf("tenant %s final grant diverged: %v vs %v",
				a.Tenants[i].Name, a.Tenants[i].FinalGrant, b.Tenants[i].FinalGrant)
		}
	}
}

// TestRunMultiRollbackPreservesSplit wires an unshedable cut: the idle
// tenant sits at the DVFS floor, and an explicit Floor below its minimum
// draw makes every arbiter epoch demand a cut its actuator must refuse. The
// executor rolls the plan back, so the split never moves and the busy
// tenant's increase (planned after the decrease) never lands half-applied.
func TestRunMultiRollbackPreservesSplit(t *testing.T) {
	sc := twoTenantScenario(proportionalArbiter, 3)
	sc.Tenants[0].Level = 0 // idle tenant already at the ladder floor
	sc.Floor = 0.5          // below the idle tenant's minimum draw
	sc.Hysteresis = 0.01
	res, err := RunMulti(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.ArbiterEpochs < 5 {
		t.Fatalf("arbiter ran only %d epochs", res.ArbiterEpochs)
	}
	if res.Violations != 0 {
		t.Fatalf("%d invariant violations during rollbacks", res.Violations)
	}
	for _, tr := range res.Tenants {
		if tr.FinalGrant != tr.InitialGrant {
			t.Fatalf("rollback leaked: tenant %s moved from %.4fW to %.4fW",
				tr.Name, float64(tr.InitialGrant), float64(tr.FinalGrant))
		}
	}
}

// TestBenchTenantScenario smoke-runs the recorded benchmark shape under
// both modes and checks the acceptance ordering on combined P99.
func TestBenchTenantScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("long DES run")
	}
	sc := BenchTenantScenario(42)
	static, err := RunMulti(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc = BenchTenantScenario(42)
	sc.Arbiter = proportionalArbiter
	arb, err := RunMulti(sc)
	if err != nil {
		t.Fatal(err)
	}
	if arb.Violations != 0 {
		t.Fatalf("%d invariant violations", arb.Violations)
	}
	if arb.Combined.P99() >= static.Combined.P99() {
		t.Fatalf("bench scenario: arbitration P99 %v not below static %v",
			arb.Combined.P99(), static.Combined.P99())
	}
}
