package harness

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"powerchief/internal/app"
	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/workload"
)

// BudgetSweep studies latency as a function of the power budget — the
// sensitivity question behind the paper's fixed 13.56 W choice: how much
// budget does each policy need to reach a given responsiveness, and how
// much of the gap between the baseline and an unconstrained system does
// PowerChief close at each point?

// SweepPoint is one (budget, policy) measurement.
type SweepPoint struct {
	Budget   cmp.Watts
	Policy   string
	Avg      time.Duration
	P99      time.Duration
	AvgPower cmp.Watts
}

// SweepResult is a full budget sweep.
type SweepResult struct {
	App    string
	Load   workload.Level
	Points []SweepPoint
}

// BudgetSweep runs baseline and PowerChief across a range of budgets at the
// given load. Budgets below the minimum feasible configuration (three cores
// at the DVFS floor) are skipped.
func BudgetSweep(a app.App, load workload.Level, budgets []cmp.Watts, seed int64) (*SweepResult, error) {
	out := &SweepResult{App: a.Name, Load: load}
	model := cmp.DefaultModel()
	minBudget := cmp.Watts(len(a.Stages)) * model.MinPower()
	// Build every feasible (budget, policy) scenario up front, then fan the
	// whole grid out through RunAll — each point seeds its own engine, so
	// the table matches a sequential sweep exactly.
	type pointMeta struct {
		Budget cmp.Watts
		Policy string
	}
	var scs []Scenario
	var metas []pointMeta
	for _, b := range budgets {
		if b < minBudget {
			continue
		}
		for _, p := range []struct {
			Label string
			New   func() core.Policy
		}{
			{"baseline", func() core.Policy { return core.Static{} }},
			{"powerchief", func() core.Policy { return core.NewPowerChief(core.DefaultConfig()) }},
		} {
			sc := mitigationScenario(a, fmt.Sprintf("sweep-%s-%.1fW-%s", a.Name, float64(b), p.Label), load, p.New, seed)
			sc.Budget = b
			// The baseline splits the budget equally: the highest uniform
			// level that fits.
			perStage := b / cmp.Watts(len(a.Stages))
			lvl, ok := cmp.HighestAffordable(model, perStage)
			if !ok {
				continue
			}
			sc.Level = lvl
			scs = append(scs, sc)
			metas = append(metas, pointMeta{Budget: b, Policy: p.Label})
		}
	}
	results, err := RunAll(scs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		out.Points = append(out.Points, SweepPoint{
			Budget:   metas[i].Budget,
			Policy:   metas[i].Policy,
			Avg:      res.Latency.Mean(),
			P99:      res.Latency.P99(),
			AvgPower: res.AvgPower,
		})
	}
	if len(out.Points) == 0 {
		return nil, fmt.Errorf("harness: no feasible budget in the sweep")
	}
	return out, nil
}

// DefaultSweepBudgets spans from barely feasible to comfortably
// over-provisioned for a three-stage application.
func DefaultSweepBudgets() []cmp.Watts {
	return []cmp.Watts{7, 9, 11, 13.56, 17, 22, 28}
}

// WriteSweep renders the sweep as a text table.
func WriteSweep(w io.Writer, s *SweepResult) error {
	if _, err := fmt.Fprintf(w, "== sweep: latency vs power budget (%s, %s load) ==\n", s.App, s.Load); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "budget\tpolicy\tavg latency\tp99 latency\tavg power")
	for _, p := range s.Points {
		fmt.Fprintf(tw, "%.2fW\t%s\t%v\t%v\t%.2fW\n",
			float64(p.Budget), p.Policy,
			p.Avg.Round(time.Millisecond), p.P99.Round(time.Millisecond), float64(p.AvgPower))
	}
	return tw.Flush()
}
