package harness

import (
	"strings"
	"testing"
	"time"

	"powerchief/internal/app"
	"powerchief/internal/core"
	"powerchief/internal/workload"
)

func rowOf(a *AblationResult, label string) (AblationRow, bool) {
	for _, r := range a.Rows {
		if strings.HasPrefix(r.Label, label) {
			return r, true
		}
	}
	return AblationRow{}, false
}

func TestAblationMetricEq1Wins(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	res, err := AblationMetric(13)
	if err != nil {
		t.Fatal(err)
	}
	eq1, ok := rowOf(res, "expected-delay")
	if !ok {
		t.Fatal("Eq.1 row missing")
	}
	for _, r := range res.Rows {
		t.Logf("%-24s avg=%.1fx p99=%.1fx power=%.2fW", r.Label, r.Avg, r.P99, r.AvgPower)
	}
	// Equation 1 must beat the pure serving-time metric decisively (the
	// serving metric never sees the queue burst). The processing metric can
	// get close; serving alone cannot.
	serving, _ := rowOf(res, "avg-serving")
	if eq1.Avg < serving.Avg {
		t.Errorf("Eq.1 (%.1fx) lost to avg-serving (%.1fx)", eq1.Avg, serving.Avg)
	}
	if eq1.Avg < 5 {
		t.Errorf("Eq.1 improvement %.1fx suspiciously low", eq1.Avg)
	}
}

func TestAblationWithdrawHelpsPhasedLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	res, err := AblationWithdraw(5)
	if err != nil {
		t.Fatal(err)
	}
	on, _ := rowOf(res, "withdraw-150s")
	off, _ := rowOf(res, "withdraw-off")
	t.Logf("withdraw on: %.1fx @ %.2fW; off: %.1fx @ %.2fW", on.Avg, on.AvgPower, off.Avg, off.AvgPower)
	// Withdraw must not hurt latency and should not use more power.
	if on.Avg < 0.8*off.Avg {
		t.Errorf("withdraw hurt latency: %.1fx vs %.1fx", on.Avg, off.Avg)
	}
}

func TestAblationSplitCloneHelpsMediumLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	res, err := AblationSplitClone(7)
	if err != nil {
		t.Fatal(err)
	}
	with, _ := rowOf(res, "split-clone")
	without, _ := rowOf(res, "literal-alg1")
	t.Logf("split-clone: %.2fx; literal: %.2fx", with.Avg, without.Avg)
	if with.Avg < without.Avg {
		t.Errorf("split-clone (%.2fx) did not beat the literal algorithm (%.2fx)", with.Avg, without.Avg)
	}
}

func TestAblationThresholdSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	res, err := AblationBalanceThreshold(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		t.Logf("%-14s avg=%.1fx", r.Label, r.Avg)
		if r.Avg < 1 {
			t.Errorf("threshold %s made high load worse (%.2fx)", r.Label, r.Avg)
		}
	}
}

func TestAblationDispatcherRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	res, err := AblationDispatcher(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		t.Logf("%-22s avg=%.1fx p99=%.1fx", r.Label, r.Avg, r.P99)
		if r.Avg < 3 {
			t.Errorf("dispatcher %s collapsed under PowerChief (%.1fx)", r.Label, r.Avg)
		}
	}
}

func TestWriteAblationAndTail(t *testing.T) {
	a := &AblationResult{ID: "x", Title: "t", Rows: []AblationRow{{Label: "v", Avg: 2, P99: 3, AvgPower: 10}}}
	var sb strings.Builder
	if err := WriteAblation(&sb, a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2.0x") {
		t.Errorf("ablation table = %q", sb.String())
	}
	tr := &TailResult{Rows: []TailRow{{Policy: "p", P50: time.Second}}}
	sb.Reset()
	if err := WriteTail(&sb, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "p50") {
		t.Errorf("tail table = %q", sb.String())
	}
}

func TestTailAnalysisOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	res, err := TailAnalysis(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var base, pc TailRow
	for _, r := range res.Rows {
		t.Logf("%-14s p50=%v p99=%v p99.9=%v", r.Policy, r.P50, r.P99, r.P999)
		// Percentiles are monotone within a row.
		if !(r.P50 <= r.P90 && r.P90 <= r.P95 && r.P95 <= r.P99 && r.P99 <= r.P999 && r.P999 <= r.Max) {
			t.Errorf("%s: percentiles not monotone", r.Policy)
		}
		switch r.Policy {
		case "Baseline":
			base = r
		case "PowerChief":
			pc = r
		}
	}
	// PowerChief compresses the whole distribution under the constraint.
	if pc.P999 >= base.P999 {
		t.Errorf("PowerChief p99.9 (%v) not below baseline (%v)", pc.P999, base.P999)
	}
}

func TestHopDelayExtension(t *testing.T) {
	base := mitigationScenario(app.Sirius(), "hop-base", workload.Low, nil, 3)
	base.Duration = 300 * time.Second
	noHop, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withHop := base
	withHop.Name = "hop-10ms"
	withHop.HopDelay = func(from, to int) time.Duration { return 10 * time.Millisecond }
	hop, err := Run(withHop)
	if err != nil {
		t.Fatal(err)
	}
	// Two inter-stage hops of 10ms each: mean latency grows by ≈20ms.
	delta := hop.Latency.Mean() - noHop.Latency.Mean()
	if delta < 15*time.Millisecond || delta > 120*time.Millisecond {
		t.Errorf("hop delay added %v to mean latency, want ≈20ms", delta)
	}
	if hop.Completed != noHop.Completed {
		t.Errorf("hop delay changed completions: %d vs %d", hop.Completed, noHop.Completed)
	}
}

// TestColocatedApplications demonstrates §8.5's per-application management:
// two independent applications, each with its own chip budget and its own
// PowerChief instance, sharing one simulation timeline.
func TestColocatedApplications(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	run := func(name string, a app.App, seed int64) (*Result, *Result) {
		base, err := Run(mitigationScenario(a, name+"-base", workload.High, nil, seed))
		if err != nil {
			t.Fatal(err)
		}
		managed, err := Run(mitigationScenario(a, name+"-pc", workload.High, func() core.Policy {
			return core.NewPowerChief(core.DefaultConfig())
		}, seed))
		if err != nil {
			t.Fatal(err)
		}
		return base, managed
	}
	// Each application is managed on a per-application basis: its own
	// budget, its own Command Center (the paper's assumption in §8.5). Both
	// must improve independently.
	sb, sm := run("colo-sirius", app.Sirius(), 11)
	nb, nm := run("colo-nlp", app.NLP(), 12)
	sAvg, _ := Improvement(sb, sm)
	nAvg, _ := Improvement(nb, nm)
	t.Logf("sirius %.1fx, nlp %.1fx under per-app budgets", sAvg, nAvg)
	if sAvg < 2 || nAvg < 2 {
		t.Errorf("per-app management underperformed: %.1fx / %.1fx", sAvg, nAvg)
	}
}
