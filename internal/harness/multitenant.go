package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"powerchief/internal/app"
	"powerchief/internal/arbiter"
	"powerchief/internal/cmp"
	"powerchief/internal/controlplane"
	"powerchief/internal/core"
	"powerchief/internal/query"
	"powerchief/internal/sim"
	"powerchief/internal/stage"
	"powerchief/internal/stats"
	"powerchief/internal/telemetry"
	"powerchief/internal/workload"
)

// Tenant is one application sharing the chip under a multi-tenant budget
// hierarchy: its own stage pipeline, arrival process, QoS target and
// PowerChief control loop, powered by a grant carved out of the chip-level
// root domain.
type Tenant struct {
	Name string
	App  app.App

	// Instances is the initial per-stage instance count (nil = one each).
	Instances []int
	// Level is the initial uniform frequency level.
	Level cmp.Level
	// Cores is the tenant's chip partition size (default 8).
	Cores int

	// QoS is the tenant's latency target, the arbiter's per-member Target.
	// Zero means none: strategies then weight by the raw bottleneck metric.
	QoS time.Duration
	// Weight is the tenant's fairness entitlement (zero reads as 1).
	Weight float64

	// Policy constructs the tenant's control policy. Nil = PowerChief with
	// the default configuration.
	Policy func() core.Policy
	// AdjustInterval is the tenant loop's control period (default 25 s).
	AdjustInterval time.Duration
	// StatsWindow is the tenant aggregator's window (default: the adjust
	// interval).
	StatsWindow time.Duration

	// Source builds the tenant's arrival process from its reference
	// capacity. Nil defaults to a constant medium load.
	Source func(refCapacityQPS float64) workload.Source
	// RefInstances/RefLevel fix the capacity anchor (default: the initial
	// configuration), so every arbiter policy faces identical arrivals.
	RefInstances []int
	RefLevel     cmp.Level
}

// MultiScenario describes one multi-tenant experiment: several tenants
// under one chip-level budget, with an optional cross-app arbiter loop
// re-granting per-tenant budgets from QoS headroom each epoch.
type MultiScenario struct {
	Name    string
	Tenants []Tenant
	// Budget is the chip-level cap the root domain owns. Zero derives it
	// from the sum of the tenants' initial configuration draws.
	Budget cmp.Watts

	// Arbiter constructs the cross-app arbitration policy (an
	// arbiter.Planner over some Strategy). Nil runs the static baseline:
	// the initial split, frozen — equal halving for two equal tenants.
	Arbiter func() core.Policy
	// ArbiterInterval is the outer epoch (default: twice the largest tenant
	// adjust interval, so the arbiter sees settled per-app reactions).
	ArbiterInterval time.Duration
	// Floor is the minimum per-tenant grant. Zero derives the largest
	// all-cores-at-minimum draw across tenants, so a floored grant is
	// always actuatable by DVFS shedding alone.
	Floor cmp.Watts
	// Hysteresis suppresses re-grants smaller than this (default Floor/4).
	Hysteresis cmp.Watts

	// Duration is the load-generation horizon.
	Duration time.Duration
	// DrainFactor bounds the post-horizon drain (default 1).
	DrainFactor float64
	// Seed drives all randomness; tenant i derives seed Seed+i·1000003.
	Seed int64
	// SampleEvery controls trace sampling (default: the arbiter interval).
	SampleEvery time.Duration

	// Churn scripts tenant membership changes at virtual times: an evict
	// stops the tenant's arrivals and control loop, sheds its chip partition
	// to the minimum draw and returns its grant to the root's headroom; an
	// admit re-creates the domain with a grant of at least Floor (reclaiming
	// watts from the richest tenants if the arbiter has granted the headroom
	// away) and restarts the loop and the arrivals. Events fire in
	// virtual-time order; each must name a scenario tenant.
	Churn []ChurnEvent

	// Audit, when set, receives the arbiter's re-grant decisions and every
	// tenant policy's boost decisions (via core.AuditSetter).
	Audit *telemetry.AuditLog
	// Metrics, when set, gets per-tenant grant/draw/metric gauges and the
	// root domain's budget/granted gauges registered on it.
	Metrics *telemetry.Registry
}

// ChurnEvent is one scripted tenant membership change.
type ChurnEvent struct {
	// At is the virtual time the event fires; must fall inside the
	// generation horizon.
	At time.Duration
	// Tenant names the affected scenario tenant.
	Tenant string
	// Admit re-admits a previously evicted tenant; false evicts a running
	// one.
	Admit bool
}

// ChurnRecord is one applied churn event: the watts an eviction freed back
// to the root, or the grant a re-admission received (never below the
// scenario floor — the floor re-admission guarantee).
type ChurnRecord struct {
	At     time.Duration
	Tenant string
	Admit  bool
	Watts  cmp.Watts
}

// TenantResult carries one tenant's collected metrics.
type TenantResult struct {
	Name   string
	Policy string
	QoS    time.Duration

	Submitted uint64
	Completed uint64
	// Latency summarizes the tenant's end-to-end query latency.
	Latency *stats.Summary

	// InitialGrant/FinalGrant bracket the tenant's domain grant; AvgGrant
	// and AvgPower are time-averaged over the run.
	InitialGrant cmp.Watts
	FinalGrant   cmp.Watts
	AvgGrant     cmp.Watts
	AvgPower     cmp.Watts

	// Boosts tallies the tenant loop's decisions by kind.
	Boosts map[core.BoostKind]int
}

// MultiResult is the full record of one RunMulti.
type MultiResult struct {
	Scenario string
	// Arbiter names the arbitration policy, or "static-split".
	Arbiter string
	Budget  cmp.Watts

	// Floor is the effective minimum per-tenant grant (the scenario's, or
	// the derived all-cores-at-minimum draw) — the churn re-admission bound.
	Floor cmp.Watts

	Tenants []TenantResult
	// Combined pools every tenant's completed-query latencies — the
	// combined p99 the arbitration-vs-static comparison is scored on.
	Combined *stats.Summary

	// ArbiterEpochs counts successful outer epochs (0 for static).
	ArbiterEpochs uint64
	// Violations counts arbiter epochs after which Σ child grants exceeded
	// the root budget — the hierarchy invariant; must be 0.
	Violations int
	// MaxGranted is the largest Σ child grants observed after any epoch.
	MaxGranted cmp.Watts

	// Churn records the applied membership changes in firing order.
	Churn []ChurnRecord

	// Trace holds sampled series: "grant:<tenant>", "power:<tenant>",
	// "metric:<tenant>" (seconds), and "granted" (Σ child grants).
	Trace *stats.TimeSeries
}

// tenantRun is the per-tenant machinery of one RunMulti.
type tenantRun struct {
	spec    Tenant
	chip    *cmp.Chip
	sys     *stage.System
	view    core.System
	agg     *core.Aggregator
	domain  *core.BudgetDomain
	policy  core.Policy
	loop    *controlplane.Loop
	gen     *workload.Generator
	latency *stats.Summary

	// evicted marks a tenant currently outside the hierarchy; boostTally
	// accumulates the boosts of loops stopped by evictions.
	evicted    bool
	boostTally map[core.BoostKind]int

	initialGrant  cmp.Watts
	powerIntegral float64 // watt-seconds
	grantIntegral float64 // watt-seconds
}

// minDraw is the tenant partition's all-instances-at-minimum draw — the
// power an evicted tenant keeps holding outside the ledger while parked.
func (r *tenantRun) minDraw(model cmp.PowerModel) cmp.Watts {
	var w cmp.Watts
	for _, st := range r.sys.Stages() {
		w += cmp.Watts(len(st.Active())) * model.MinPower()
	}
	return w
}

// appMetric is the tenant's end-to-end Equation 1 expected delay: for each
// stage the worst per-instance metric (the next query lands on some
// instance; the slowest bounds the stage), summed across the pipeline. The
// per-stage terms are the member's Breakdown.
func (r *tenantRun) appMetric() (time.Duration, []arbiter.StageMetric) {
	id := core.Identifier{Metric: core.MetricExpectedDelay}
	worst := make(map[string]time.Duration)
	for _, rk := range id.Rank(r.view, r.agg) {
		if rk.Metric > worst[rk.Stage.Name()] {
			worst[rk.Stage.Name()] = rk.Metric
		}
	}
	var total time.Duration
	stages := r.view.Stages()
	breakdown := make([]arbiter.StageMetric, 0, len(stages))
	for _, st := range stages {
		m := worst[st.Name()]
		breakdown = append(breakdown, arbiter.StageMetric{Stage: st.Name(), Metric: m})
		total += m
	}
	return total, breakdown
}

// shedToGrant makes a lowered grant physical on a tenant's chip partition:
// it steps the highest-level instances down (the richest-donor order
// live.Cluster uses) until the draw fits the new grant, then re-sets the
// chip budget. An unshedable cut — every instance already at the ladder
// floor — is an error, which the executor turns into a plan rollback: the
// arbiter must not starve a tenant below its minimum draw. Raised grants
// only lift the chip budget; spending the new headroom is deliberately
// left to the tenant's own PowerChief loop, which knows whether the next
// watt is worth more as a frequency step or an instance boost (the paper's
// Fig. 4 finding: at high load, instances beat frequency). The scenario's
// arbiter floor bounds how deep a cut can go, so an idle tenant is never
// more than a few frequency steps below base when load returns.
func shedToGrant(sys *stage.System, chip *cmp.Chip, w cmp.Watts) error {
	for chip.Draw() > w+1e-9 {
		var best *stage.Instance
		for _, st := range sys.Stages() {
			for _, in := range st.Active() {
				if best == nil || in.Level() > best.Level() {
					best = in
				}
			}
		}
		if best == nil || best.Level() == 0 {
			return fmt.Errorf("harness: grant %.2fW below minimum draw %.2fW: %w",
				float64(w), float64(chip.Draw()), cmp.ErrBudgetExceeded)
		}
		if err := best.SetLevel(best.Level() - 1); err != nil {
			return err
		}
	}
	return chip.SetBudget(w)
}

// evictTenant removes a tenant from the hierarchy mid-run: arrivals pause,
// the control loop stops (its boost tally is preserved), the chip partition
// is shed to its minimum draw — the power a parked partition keeps holding
// outside the ledger — and the domain's grant returns to the root's
// headroom. Returns the freed watts.
func evictTenant(r *tenantRun, root *core.BudgetDomain, model cmp.PowerModel) (cmp.Watts, error) {
	if r.evicted {
		return 0, fmt.Errorf("tenant %q is already evicted", r.spec.Name)
	}
	r.gen.Pause()
	r.loop.Stop()
	if err := shedToGrant(r.sys, r.chip, r.minDraw(model)); err != nil {
		return 0, fmt.Errorf("parking tenant %q: %w", r.spec.Name, err)
	}
	freed, err := root.Evict(r.spec.Name)
	if err != nil {
		return 0, fmt.Errorf("evicting tenant %q: %w", r.spec.Name, err)
	}
	r.evicted = true
	return freed, nil
}

// admitTenant re-admits an evicted tenant: a fresh child domain with a
// grant of at least the scenario floor (or the parked partition's draw, if
// instance boosts grew it past the floor), reclaimed from the richest
// running tenants when the arbiter has granted the headroom away, and a
// fresh control loop on the shared group. The caller resumes arrivals.
func admitTenant(r *tenantRun, root *core.BudgetDomain, group *controlplane.Group,
	model cmp.PowerModel, floor cmp.Watts, audit *telemetry.AuditLog) (cmp.Watts, error) {
	if !r.evicted {
		return 0, fmt.Errorf("tenant %q is not evicted", r.spec.Name)
	}
	grant := floor
	if d := r.chip.Draw(); d > grant {
		grant = d
	}
	if err := reclaimHeadroom(root, grant, floor); err != nil {
		return 0, fmt.Errorf("re-admitting tenant %q: %w", r.spec.Name, err)
	}
	dom, err := root.NewChild(r.spec.Name, grant, func(w cmp.Watts) error {
		return shedToGrant(r.sys, r.chip, w)
	})
	if err != nil {
		return 0, fmt.Errorf("re-admitting tenant %q: %w", r.spec.Name, err)
	}
	// NewChild does not actuate the initial grant; lift the parked chip's
	// budget to it so the tenant loop has headroom to spend again.
	if err := shedToGrant(r.sys, r.chip, grant); err != nil {
		return 0, fmt.Errorf("re-admitting tenant %q: %w", r.spec.Name, err)
	}
	r.domain = dom
	r.evicted = false
	// The stopped loop is about to be replaced; fold its boosts into the
	// tally so the final TenantResult spans every incarnation.
	if r.boostTally == nil {
		r.boostTally = make(map[core.BoostKind]int)
	}
	for k, v := range r.loop.Boosts() {
		r.boostTally[k] += v
	}
	r.loop, err = group.Go(controlplane.NewAdjuster(r.view, r.agg), controlplane.Options{
		Policy:   r.policy,
		Interval: r.spec.AdjustInterval,
		Audit:    audit,
	})
	if err != nil {
		return 0, fmt.Errorf("tenant %q loop: %w", r.spec.Name, err)
	}
	return grant, nil
}

// reclaimHeadroom makes room for a re-admission: when the arbiter has
// granted the evicted tenant's watts away, the richest running tenants are
// cut toward the floor — richest first, never below it — until the root's
// headroom covers the grant. This is the floor re-admission guarantee: the
// floor bounds both how deep a running tenant can be cut and how much a
// returning one is owed, so a hierarchy whose floors fit the budget can
// always take an evicted tenant back.
func reclaimHeadroom(root *core.BudgetDomain, grant, floor cmp.Watts) error {
	children := root.Children()
	sort.Slice(children, func(i, j int) bool { return children[i].Budget() > children[j].Budget() })
	for _, c := range children {
		need := grant - root.Headroom()
		if need <= 1e-9 {
			return nil
		}
		cut := c.Budget() - floor
		if cut <= 0 {
			continue
		}
		if cut > need {
			cut = need
		}
		if err := c.SetBudget(c.Budget() - cut); err != nil {
			// An unshedable cut — the donor's partition has grown past what
			// the lowered grant can power — just moves to the next donor.
			continue
		}
	}
	if hr := root.Headroom(); hr < grant-1e-9 {
		return fmt.Errorf("headroom %.2fW cannot cover the %.2fW floor re-admission",
			float64(hr), float64(grant))
	}
	return nil
}

// tenantArbiterView is the arbiter's view of the root domain: the budget
// arithmetic comes from the domain ledger (Draw = Σ child grants, so the
// whole cap is distributable), the members are the tenants with their live
// Equation 1 metrics against their QoS targets.
type tenantArbiterView struct {
	now   func() time.Duration
	model cmp.PowerModel
	root  *core.BudgetDomain
	runs  []*tenantRun
	floor cmp.Watts
	hyst  cmp.Watts
}

func (v *tenantArbiterView) Now() time.Duration               { return v.now() }
func (v *tenantArbiterView) Stages() []core.StageControl      { return nil }
func (v *tenantArbiterView) Quarantined() []core.StageControl { return nil }
func (v *tenantArbiterView) PowerModel() cmp.PowerModel       { return v.model }
func (v *tenantArbiterView) Budget() cmp.Watts                { return v.root.Budget() }
func (v *tenantArbiterView) Draw() cmp.Watts                  { return v.root.Granted() }
func (v *tenantArbiterView) Headroom() cmp.Watts              { return v.root.Headroom() }
func (v *tenantArbiterView) FreeCores() int                   { return 0 }
func (v *tenantArbiterView) Floor() cmp.Watts                 { return v.floor }
func (v *tenantArbiterView) Hysteresis() cmp.Watts            { return v.hyst }

func (v *tenantArbiterView) Members() []arbiter.Member {
	out := make([]arbiter.Member, 0, len(v.runs))
	for _, r := range v.runs {
		if r.evicted {
			continue
		}
		metric, breakdown := r.appMetric()
		out = append(out, arbiter.Member{
			Control:   r.domain,
			Granted:   r.domain.Budget(),
			Metric:    metric,
			Target:    r.spec.QoS,
			Weight:    r.spec.Weight,
			Breakdown: breakdown,
		})
	}
	return out
}

// defaults fills in unset scenario fields that do not depend on built state.
func (sc *MultiScenario) defaults() {
	for i := range sc.Tenants {
		t := &sc.Tenants[i]
		if t.Cores == 0 {
			t.Cores = 8
		}
		if t.AdjustInterval == 0 {
			t.AdjustInterval = 25 * time.Second
		}
		if t.StatsWindow == 0 {
			t.StatsWindow = t.AdjustInterval
		}
		if t.Weight == 0 {
			t.Weight = 1
		}
		if t.Instances == nil {
			t.Instances = make([]int, len(t.App.Stages))
			for j := range t.Instances {
				t.Instances[j] = 1
			}
		}
		if t.RefInstances == nil {
			t.RefInstances = t.Instances
		}
		if t.RefLevel == 0 {
			t.RefLevel = t.Level
		}
		if t.Policy == nil {
			t.Policy = func() core.Policy { return core.NewPowerChief(core.DefaultConfig()) }
		}
		if t.Source == nil {
			t.Source = func(capacity float64) workload.Source {
				return workload.Constant(workload.RateForUtilization(capacity, workload.Medium.Utilization()))
			}
		}
	}
	if sc.ArbiterInterval == 0 {
		var max time.Duration
		for i := range sc.Tenants {
			if sc.Tenants[i].AdjustInterval > max {
				max = sc.Tenants[i].AdjustInterval
			}
		}
		sc.ArbiterInterval = 2 * max
	}
	if sc.SampleEvery == 0 {
		sc.SampleEvery = sc.ArbiterInterval
	}
	if sc.DrainFactor == 0 {
		sc.DrainFactor = 1
	}
}

// RunMulti executes the multi-tenant scenario: one DES engine, one chip
// budget lifted into a root BudgetDomain, one child domain (with its own
// chip partition, pipeline and unmodified PowerChief loop) per tenant, and
// — unless Arbiter is nil — an outer arbiter loop re-granting the split
// every epoch through the validating, rolling-back executor.
//
// The nested loops share the engine clock through a controlplane.Group with
// the arbiter registered first, so when an arbiter epoch coincides with
// tenant epochs the fresh grants land before the tenants react — the
// determinism contract that makes a run byte-reproducible. After every
// arbiter epoch the hierarchy invariant (Σ child grants ≤ chip budget) is
// checked and violations are counted; a correct run reports zero.
func RunMulti(sc MultiScenario) (*MultiResult, error) {
	sc.defaults()
	if len(sc.Tenants) == 0 {
		return nil, fmt.Errorf("harness: multi-tenant scenario %q needs tenants", sc.Name)
	}
	if sc.Duration <= 0 {
		return nil, fmt.Errorf("harness: scenario %q needs a positive duration", sc.Name)
	}
	for i := range sc.Tenants {
		if err := sc.Tenants[i].App.Validate(); err != nil {
			return nil, fmt.Errorf("harness: tenant %q: %w", sc.Tenants[i].Name, err)
		}
	}
	for _, ev := range sc.Churn {
		known := false
		for i := range sc.Tenants {
			if sc.Tenants[i].Name == ev.Tenant {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("harness: churn event names unknown tenant %q", ev.Tenant)
		}
		if ev.At <= 0 || ev.At >= sc.Duration {
			return nil, fmt.Errorf("harness: churn event for %q at %v outside the (0, %v) horizon",
				ev.Tenant, ev.At, sc.Duration)
		}
	}

	eng := sim.NewEngine()
	model := cmp.DefaultModel()

	// Initial draws decide the derived budget, floor and grants before any
	// chip is built.
	specsByTenant := make([][]stage.Spec, len(sc.Tenants))
	draws := make([]cmp.Watts, len(sc.Tenants))
	var totalDraw, sumWeight cmp.Watts
	floor := sc.Floor
	for i := range sc.Tenants {
		t := &sc.Tenants[i]
		specs, err := t.App.Specs(t.Instances, t.Level)
		if err != nil {
			return nil, fmt.Errorf("harness: tenant %q: %w", t.Name, err)
		}
		specsByTenant[i] = specs
		var draw, minDraw cmp.Watts
		for _, spec := range specs {
			draw += cmp.Watts(spec.Instances) * model.Power(spec.Level)
			minDraw += cmp.Watts(spec.Instances) * model.MinPower()
		}
		draws[i] = draw
		totalDraw += draw
		sumWeight += cmp.Watts(t.Weight)
		if sc.Floor == 0 && minDraw > floor {
			floor = minDraw
		}
	}
	budget := sc.Budget
	if budget == 0 {
		budget = totalDraw
	}
	if budget < totalDraw-1e-9 {
		return nil, fmt.Errorf("harness: scenario %q: budget %.2fW below the %.2fW initial draw",
			sc.Name, float64(budget), float64(totalDraw))
	}
	hyst := sc.Hysteresis
	if hyst == 0 {
		hyst = floor / 4
	}

	// The initial split: each tenant's configuration draw, plus the
	// weight-proportional share of the leftover headroom. Equal tenants get
	// equal halves — the static-halving baseline the arbiter is scored
	// against.
	root := core.NewRootDomain("chip", budget)
	leftover := budget - totalDraw
	runs := make([]*tenantRun, len(sc.Tenants))
	for i := range sc.Tenants {
		t := &sc.Tenants[i]
		grant := draws[i] + leftover*cmp.Watts(t.Weight)/sumWeight
		chip := cmp.NewChip(t.Cores, model, grant)
		sys, err := stage.NewSystem(eng, chip, specsByTenant[i])
		if err != nil {
			return nil, fmt.Errorf("harness: tenant %q: %w", t.Name, err)
		}
		r := &tenantRun{
			spec:         *t,
			chip:         chip,
			sys:          sys,
			view:         core.NewDESView(sys),
			agg:          core.NewAggregator(t.StatsWindow, eng.Now),
			policy:       t.Policy(),
			latency:      stats.NewSummary(),
			initialGrant: grant,
		}
		r.domain, err = root.NewChild(t.Name, grant, func(w cmp.Watts) error {
			return shedToGrant(sys, chip, w)
		})
		if err != nil {
			return nil, fmt.Errorf("harness: tenant %q: %w", t.Name, err)
		}
		runs[i] = r
	}

	res := &MultiResult{
		Scenario: sc.Name,
		Arbiter:  "static-split",
		Budget:   budget,
		Floor:    floor,
		Combined: stats.NewSummary(),
		Trace:    stats.NewTimeSeries(),
	}

	// Completion taps and load generators, one per tenant, each with a
	// deterministic derived seed.
	for i, r := range runs {
		r := r
		r.sys.OnComplete(func(q *query.Query) {
			r.agg.Ingest(q)
			r.latency.Observe(q.Latency())
			res.Combined.Observe(q.Latency())
		})
		capacity := r.spec.App.CapacityQPS(r.spec.RefInstances, r.spec.RefLevel)
		src := r.spec.Source(capacity)
		rng := rand.New(rand.NewSource(sc.Seed + int64(i)*1000003))
		branches := make([]int, len(r.spec.Instances))
		copy(branches, r.spec.Instances)
		r.gen = workload.NewGenerator(eng, r.sys, src, func(rr *rand.Rand) [][]time.Duration {
			return r.spec.App.DrawWork(rr, branches)
		}, rng, sc.Duration)
		r.gen.Start()
	}

	// Control plane: a Group of nested loops on the engine clock, arbiter
	// first (fresh grants land before tenants react at coinciding epochs).
	group, err := controlplane.NewGroup(controlplane.SimClock(eng))
	if err != nil {
		return nil, err
	}
	checkInvariant := func() {
		if err := root.CheckInvariant(); err != nil {
			res.Violations++
		}
		if g := root.Granted(); g > res.MaxGranted {
			res.MaxGranted = g
		}
	}
	var arbLoop *controlplane.Loop
	if sc.Arbiter != nil {
		arbPolicy := sc.Arbiter()
		res.Arbiter = arbPolicy.Name()
		aview := &tenantArbiterView{
			now: eng.Now, model: model, root: root, runs: runs, floor: floor, hyst: hyst,
		}
		arbLoop, err = group.Go(controlplane.NewAdjuster(aview, nil), controlplane.Options{
			Policy:    arbPolicy,
			Interval:  sc.ArbiterInterval,
			Audit:     sc.Audit,
			OnOutcome: func(core.BoostOutcome) { checkInvariant() },
			OnError:   func(error) { checkInvariant() },
		})
		if err != nil {
			return nil, fmt.Errorf("harness: %q arbiter loop: %w", sc.Name, err)
		}
	}
	for _, r := range runs {
		r.loop, err = group.Go(controlplane.NewAdjuster(r.view, r.agg), controlplane.Options{
			Policy:   r.policy,
			Interval: r.spec.AdjustInterval,
			Audit:    sc.Audit,
		})
		if err != nil {
			return nil, fmt.Errorf("harness: tenant %q loop: %w", r.spec.Name, err)
		}
	}

	// Churn: scripted membership changes, validated above and applied as
	// engine events. A failure inside an event cannot return, so the first
	// one is carried out and fails the whole run after the horizon.
	var churnErr error
	churnFail := func(err error) {
		if churnErr == nil {
			churnErr = err
		}
	}
	runByName := make(map[string]*tenantRun, len(runs))
	for _, r := range runs {
		runByName[r.spec.Name] = r
	}
	for _, ev := range sc.Churn {
		ev := ev
		r := runByName[ev.Tenant]
		eng.ScheduleAt(ev.At, func() {
			var err error
			var watts cmp.Watts
			if ev.Admit {
				watts, err = admitTenant(r, root, group, model, floor, sc.Audit)
				if err == nil {
					r.gen.Resume()
				}
			} else {
				watts, err = evictTenant(r, root, model)
			}
			if err != nil {
				churnFail(fmt.Errorf("at %v: %w", ev.At, err))
				return
			}
			res.Churn = append(res.Churn, ChurnRecord{
				At: eng.Now(), Tenant: ev.Tenant, Admit: ev.Admit, Watts: watts,
			})
			checkInvariant()
		})
	}

	// Sampler: registered after every loop, so equal-timestamp samples see
	// the post-adjust state.
	lastSample := time.Duration(0)
	stopSample := eng.Every(sc.SampleEvery, func() {
		now := eng.Now()
		dt := (now - lastSample).Seconds()
		lastSample = now
		for _, r := range runs {
			grant := r.domain.Budget()
			r.powerIntegral += float64(r.chip.Draw()) * dt
			r.grantIntegral += float64(grant) * dt
			res.Trace.Record("grant:"+r.spec.Name, now, float64(grant))
			res.Trace.Record("power:"+r.spec.Name, now, float64(r.chip.Draw()))
			metric, _ := r.appMetric()
			res.Trace.Record("metric:"+r.spec.Name, now, metric.Seconds())
		}
		res.Trace.Record("granted", now, float64(root.Granted()))
	})

	if sc.Metrics != nil {
		registerTenantMetrics(sc.Metrics, root, runs)
	}

	// Generation horizon, then drain every tenant (bounded).
	minAdjust := sc.Tenants[0].AdjustInterval
	for i := range sc.Tenants {
		if sc.Tenants[i].AdjustInterval < minAdjust {
			minAdjust = sc.Tenants[i].AdjustInterval
		}
	}
	drained := func() bool {
		for _, r := range runs {
			if !r.sys.Drain() {
				return false
			}
		}
		return true
	}
	eng.RunUntil(sc.Duration)
	deadline := sc.Duration + time.Duration(float64(sc.Duration)*sc.DrainFactor)
	for eng.Now() < deadline && !drained() {
		step := minAdjust
		if eng.Now()+step > deadline {
			step = deadline - eng.Now()
		}
		eng.RunUntil(eng.Now() + step)
	}
	group.Stop()
	stopSample()

	if churnErr != nil {
		return nil, fmt.Errorf("harness: %q churn: %w", sc.Name, churnErr)
	}
	if arbLoop != nil {
		res.ArbiterEpochs = arbLoop.Total()
	}
	horizon := lastSample.Seconds()
	for _, r := range runs {
		boosts := r.loop.Boosts()
		for k, v := range r.boostTally {
			boosts[k] += v
		}
		tr := TenantResult{
			Name:         r.spec.Name,
			Policy:       r.policy.Name(),
			QoS:          r.spec.QoS,
			Submitted:    r.sys.Submitted(),
			Completed:    r.sys.Completed(),
			Latency:      r.latency,
			InitialGrant: r.initialGrant,
			FinalGrant:   r.domain.Budget(),
			Boosts:       boosts,
		}
		if horizon > 0 {
			tr.AvgPower = cmp.Watts(r.powerIntegral / horizon)
			tr.AvgGrant = cmp.Watts(r.grantIntegral / horizon)
		} else {
			tr.AvgPower = r.chip.Draw()
			tr.AvgGrant = r.domain.Budget()
		}
		res.Tenants = append(res.Tenants, tr)
		if err := r.chip.CheckInvariant(); err != nil {
			return nil, fmt.Errorf("harness: tenant %q ended with a broken chip invariant: %w", r.spec.Name, err)
		}
	}
	if err := root.CheckInvariant(); err != nil {
		return nil, fmt.Errorf("harness: %q ended with a broken domain invariant: %w", sc.Name, err)
	}
	return res, nil
}

// registerTenantMetrics exposes the hierarchy on a telemetry registry:
// per-tenant grant, draw and bottleneck-metric gauges plus the root
// domain's budget and granted sums.
func registerTenantMetrics(reg *telemetry.Registry, root *core.BudgetDomain, runs []*tenantRun) {
	reg.GaugeFunc("powerchief_domain_budget_watts",
		"chip-level root domain budget", func() float64 { return float64(root.Budget()) })
	reg.GaugeFunc("powerchief_domain_granted_watts",
		"sum of per-tenant grants", func() float64 { return float64(root.Granted()) })
	for _, r := range runs {
		r := r
		name := telemetry.SanitizeName(r.spec.Name)
		reg.GaugeFunc("powerchief_tenant_grant_watts_"+name,
			"tenant's current budget grant", func() float64 { return float64(r.domain.Budget()) })
		reg.GaugeFunc("powerchief_tenant_draw_watts_"+name,
			"tenant's current chip draw", func() float64 { return float64(r.chip.Draw()) })
		reg.GaugeFunc("powerchief_tenant_metric_seconds_"+name,
			"tenant's end-to-end expected delay (Equation 1)", func() float64 {
				m, _ := r.appMetric()
				return m.Seconds()
			})
	}
}

// CombinedImprovement returns baseline/measured ratios for the combined
// mean and P99 latency of a multi-tenant result against a baseline — the
// arbitration-vs-static-halving score.
func CombinedImprovement(baseline, measured *MultiResult) (avg, p99 float64) {
	avg = stats.Improvement(baseline.Combined.Mean(), measured.Combined.Mean())
	p99 = stats.Improvement(baseline.Combined.P99(), measured.Combined.P99())
	return avg, p99
}

// BenchTenantScenario is the recorded multi-tenant benchmark: Sirius riding
// a diurnal cycle and NLP hit by a flash crowd, their peaks offset so the
// chip is never short of watts overall — only ever in the wrong tenant's
// hands. A static halving strands the idle tenant's headroom exactly when
// the other peaks; the arbiter re-grants it. Pass Arbiter (or leave nil for
// the static baseline) on the returned scenario.
func BenchTenantScenario(seed int64) MultiScenario {
	return MultiScenario{
		Name: "multitenant-sirius-nlp",
		Tenants: []Tenant{
			{
				Name: "sirius", App: app.Sirius(),
				Instances: []int{1, 1, 2}, Level: 6,
				QoS: 2 * time.Second,
				Source: func(capacity float64) workload.Source {
					// Crest at t = 100 s, trough around t = 300 s. The crest
					// stays below capacity so this tenant is never the
					// structural bottleneck: at any seed, the combined tail
					// is owned by the flash tenant, and the watts stranded
					// here during the trough are what arbitration moves.
					d, err := workload.NewDiurnal(0.2*capacity, 0.8*capacity, 400*time.Second)
					if err != nil {
						panic(err) // static construction cannot fail
					}
					return d
				},
			},
			{
				Name: "nlp", App: app.NLP(),
				Instances: []int{1, 2, 1}, Level: 6,
				QoS: 1500 * time.Millisecond,
				Source: func(capacity float64) workload.Source {
					// One 120 s flash crowd landing inside the diurnal
					// tenant's trough: the chip as a whole has the watts, the
					// static split has them in the wrong tenant's hands.
					tr, err := workload.NewTrace(
						workload.Phase{Until: 260 * time.Second, Rate: 0.3 * capacity},
						workload.Phase{Until: 380 * time.Second, Rate: 2 * capacity},
						workload.Phase{Until: 10000 * time.Second, Rate: 0.3 * capacity},
					)
					if err != nil {
						panic(err) // static construction cannot fail
					}
					return tr
				},
			},
		},
		ArbiterInterval: 25 * time.Second,
		// A high floor bounds how deep any single tenant can be cut. Cuts
		// actuate instantly (DVFS shed) but recovery takes the tenant loop
		// several epochs of re-boosting, so shallow cuts keep a mistimed
		// re-grant recoverable while still moving ~4 W to the hot tenant.
		Floor:      14,
		Hysteresis: 1,
		Duration:   600 * time.Second,
		Seed:       seed,
	}
}
