package harness

import (
	"fmt"
	"testing"
	"time"

	"powerchief/internal/app"
	"powerchief/internal/core"
	"powerchief/internal/workload"
)

// TestDebugMediumTrajectory prints the PowerChief decision trajectory at
// medium load; run with -run DebugMedium -v to inspect.
func TestDebugMediumTrajectory(t *testing.T) {
	if testing.Short() || testing.Verbose() == false {
		t.Skip("debug only")
	}
	sc := mitigationScenario(app.Sirius(), "debug", workload.Medium, func() core.Policy {
		return core.NewPowerChief(core.DefaultConfig())
	}, 7)
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct frequency/instance trajectory from the trace.
	for _, name := range res.Trace.Names() {
		s := res.Trace.Get(name)
		line := name + ": "
		last := -1.0
		for _, p := range s.Points {
			if p.Value != last {
				line += fmt.Sprintf("%ds=%.2g ", int(p.At.Seconds()), p.Value)
				last = p.Value
			}
		}
		t.Log(line)
	}
	t.Logf("latency %v boosts %v", res.Latency, res.Boosts)
	_ = time.Second
}
