package harness

import (
	"strings"
	"testing"

	"powerchief/internal/app"
	"powerchief/internal/core"
	"powerchief/internal/workload"
)

// These tests assert the qualitative shape of each reproduced figure — who
// wins, by roughly what factor, where the crossovers fall — not absolute
// numbers. They are the executable form of EXPERIMENTS.md.

func barOf(f *Figure, group, label string) Bar {
	for _, g := range f.Groups {
		if !strings.HasPrefix(g.Label, group) {
			continue
		}
		for _, b := range g.Bars {
			if b.Label == label {
				return b
			}
		}
	}
	return Bar{}
}

func TestFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	fig, err := Figure4(11)
	if err != nil {
		t.Fatal(err)
	}
	lowFreq := barOf(fig, "low", "Freq-Boosting")
	lowInst := barOf(fig, "low", "Inst-Boosting")
	highFreq := barOf(fig, "high", "Freq-Boosting")
	highInst := barOf(fig, "high", "Inst-Boosting")
	t.Logf("low: freq=%.2fx/%.2fx inst=%.2fx/%.2fx", lowFreq.Avg, lowFreq.P99, lowInst.Avg, lowInst.P99)
	t.Logf("high: freq=%.2fx/%.2fx inst=%.2fx/%.2fx", highFreq.Avg, highFreq.P99, highInst.Avg, highInst.P99)

	// §2.3 / Figure 4: at low load frequency boosting beats instance
	// boosting; at high load instance boosting wins by a wide margin.
	if lowFreq.Avg < lowInst.Avg {
		t.Errorf("low load: freq (%.2fx) should beat inst (%.2fx)", lowFreq.Avg, lowInst.Avg)
	}
	if highInst.Avg < highFreq.Avg {
		t.Errorf("high load: inst (%.2fx) should beat freq (%.2fx)", highInst.Avg, highFreq.Avg)
	}
	if highInst.Avg < 3 {
		t.Errorf("high load: inst improvement %.2fx, want a large factor", highInst.Avg)
	}
}

func TestFigure10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	fig, err := Figure10(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range fig.Groups {
		var pc, freq, inst Bar
		for _, b := range g.Bars {
			switch b.Label {
			case "PowerChief":
				pc = b
			case "Freq-Boosting":
				freq = b
			case "Inst-Boosting":
				inst = b
			}
		}
		t.Logf("%s: freq=%.1fx inst=%.1fx pc=%.1fx (p99 %.1f/%.1f/%.1f)",
			g.Label, freq.Avg, inst.Avg, pc.Avg, freq.P99, inst.P99, pc.P99)
		// PowerChief achieves the most latency reduction "in all cases"
		// (§8.2); allow a small tolerance for stochastic ties.
		best := freq.Avg
		if inst.Avg > best {
			best = inst.Avg
		}
		if pc.Avg < 0.85*best {
			t.Errorf("%s: PowerChief %.2fx well below best single technique %.2fx", g.Label, pc.Avg, best)
		}
		if pc.Avg < 1.0 {
			t.Errorf("%s: PowerChief made latency worse (%.2fx)", g.Label, pc.Avg)
		}
	}
	// High load: improvements must be large (paper: 32.8x avg).
	high := barOf(fig, "high", "PowerChief")
	if high.Avg < 5 {
		t.Errorf("high-load PowerChief improvement %.1fx, want ≥ 5x", high.Avg)
	}
}

func TestFigure12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	fig, err := Figure12(7)
	if err != nil {
		t.Fatal(err)
	}
	high := barOf(fig, "high", "PowerChief")
	t.Logf("NLP high: pc=%.1fx/%.1fx", high.Avg, high.P99)
	if high.Avg < 5 {
		t.Errorf("NLP high-load PowerChief improvement %.1fx, want ≥ 5x", high.Avg)
	}
}

func TestFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	res, err := Figure2(3)
	if err != nil {
		t.Fatal(err)
	}
	norm := map[string]float64{}
	for _, r := range res.Rows {
		norm[r.Label] = r.Normalized
		t.Logf("%-28s %.2f", r.Label, r.Normalized)
	}
	// Boosting the dominant QA stage must beat boosting the light IMM stage
	// under either technique (the Figure 2 premise).
	if norm["Inst-boost QA only"] >= norm["Inst-boost IMM only"] {
		t.Error("inst-boosting QA should beat inst-boosting IMM")
	}
	if norm["Freq-boost QA only"] >= norm["Freq-boost IMM only"] {
		t.Error("freq-boosting QA should beat freq-boosting IMM")
	}
	// The optimal decision (inst-boost QA) must reduce latency vs baseline.
	if norm["Inst-boost QA only"] >= 1.0 {
		t.Errorf("inst-boost QA normalized %.2f, want < 1", norm["Inst-boost QA only"])
	}
}

func TestFigure11TracesRecorded(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	res, err := Figure11(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 3 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	for _, r := range res.Runs {
		if r.Trace.Get("power") == nil || len(r.Trace.Get("power").Points) == 0 {
			t.Errorf("%s: no power trace", r.Policy)
		}
		if r.Trace.Get("instances:QA") == nil {
			t.Errorf("%s: no QA instance-count trace", r.Policy)
		}
	}
	// Instance boosting and PowerChief launch extra instances under the
	// high phased load; the traces must show growth beyond one instance.
	for _, r := range res.Runs[1:] { // inst-boost, powerchief
		maxQA := 0.0
		for _, p := range r.Trace.Get("instances:QA").Points {
			if p.Value > maxQA {
				maxQA = p.Value
			}
		}
		if maxQA < 2 {
			t.Errorf("%s: QA never scaled beyond %v instances", r.Policy, maxQA)
		}
	}
}

func TestQoSExperimentsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	for name, fn := range map[string]func(int64) (*QoSResult, error){
		"figure13": Figure13,
		"figure14": Figure14,
	} {
		res, err := fn(9)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var base, peg, pc QoSRun
		for _, r := range res.Runs {
			switch r.Policy {
			case "baseline":
				base = r
			case "pegasus":
				peg = r
			case "powerchief":
				pc = r
			}
		}
		t.Logf("%s: baseline power=%.2f lat=%.2f | pegasus power=%.2f lat=%.2f | powerchief power=%.2f lat=%.2f (withdrawn %d)",
			name, base.PowerFraction, base.QoSFraction, peg.PowerFraction, peg.QoSFraction,
			pc.PowerFraction, pc.QoSFraction, pc.Result.Withdrawn)
		// Baseline applies no control: full power.
		if base.PowerFraction < 0.99 {
			t.Errorf("%s: baseline power fraction %.2f, want ≈1", name, base.PowerFraction)
		}
		// PowerChief conserves more power than Pegasus (§8.4).
		if pc.PowerFraction >= peg.PowerFraction {
			t.Errorf("%s: PowerChief power %.2f not below Pegasus %.2f", name, pc.PowerFraction, peg.PowerFraction)
		}
		// Both meet the QoS on average.
		if pc.QoSFraction > 1.0 {
			t.Errorf("%s: PowerChief mean latency exceeded QoS (%.2f)", name, pc.QoSFraction)
		}
		if peg.QoSFraction > 1.0 {
			t.Errorf("%s: Pegasus mean latency exceeded QoS (%.2f)", name, peg.QoSFraction)
		}
	}
}

func TestComputeHeadline(t *testing.T) {
	f := &Figure{Groups: []BarGroup{
		{Label: "low load", Bars: []Bar{{Label: "PowerChief", Avg: 2, P99: 1.5}}},
		{Label: "high load", Bars: []Bar{{Label: "PowerChief", Avg: 30, P99: 20}}},
	}}
	q := &QoSResult{Runs: []QoSRun{
		{Policy: "pegasus", PowerFraction: 0.9},
		{Policy: "powerchief", PowerFraction: 0.6},
	}}
	h := ComputeHeadline(f, f, q, q)
	if h.SiriusAvgX != 16 || h.SiriusP99X != 10.75 {
		t.Errorf("mean improvements = %v/%v", h.SiriusAvgX, h.SiriusP99X)
	}
	if diff := h.SiriusPowerSaved - 0.3; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("power saved = %v, want 0.3", h.SiriusPowerSaved)
	}
}

func TestMitigationScenarioMatchesTable2(t *testing.T) {
	sc := mitigationScenario(app.Sirius(), "x", workload.High, nil, 1)
	if sc.Budget != MitigationBudget {
		t.Error("budget mismatch")
	}
	if sc.AdjustInterval.Seconds() != 25 {
		t.Error("adjust interval mismatch")
	}
	sc.defaults()
	if sc.StatsWindow != sc.AdjustInterval {
		t.Error("stats window default mismatch")
	}
	cfg := core.DefaultConfig()
	if cfg.WithdrawInterval.Seconds() != 150 || cfg.BalanceThreshold.Seconds() != 1 {
		t.Error("Table 2 control constants mismatch")
	}
}
