package app

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/stage"
)

// WorkModel is a lognormal service-demand distribution: Draw returns the
// demand of one query at the reference frequency.
type WorkModel struct {
	Median time.Duration // exp(µ) of the lognormal
	Sigma  float64       // σ of the lognormal (tail spread)
}

// Draw samples one demand.
func (w WorkModel) Draw(rng *rand.Rand) time.Duration {
	if w.Sigma == 0 {
		return w.Median
	}
	return time.Duration(float64(w.Median) * math.Exp(w.Sigma*rng.NormFloat64()))
}

// Mean returns the distribution mean: median·exp(σ²/2).
func (w WorkModel) Mean() time.Duration {
	return time.Duration(float64(w.Median) * math.Exp(w.Sigma*w.Sigma/2))
}

// StageProfile describes one processing stage of an application.
type StageProfile struct {
	Name     string
	Kind     stage.Kind
	Work     WorkModel
	MemBound float64 // fraction of work insensitive to frequency

	// Skew spreads the service demand across the branches of a fan-out
	// stage: branch b of n draws work scaled by a factor ranging linearly
	// from 1−Skew (branch 0) to 1+Skew (branch n−1), modelling imbalanced
	// index shards. Zero means identical branches. Ignored for pipeline
	// stages.
	Skew float64
}

// Profile returns the stage's offline frequency profile.
func (p StageProfile) Profile() cmp.SpeedupProfile {
	return cmp.NewRooflineProfile(p.MemBound)
}

// MeanServing returns the stage's mean serving time per query at the given
// frequency level.
func (p StageProfile) MeanServing(l cmp.Level) time.Duration {
	return time.Duration(float64(p.Work.Mean()) * p.Profile().ExecRatio(l))
}

// App is a multi-stage application definition.
type App struct {
	Name   string
	Stages []StageProfile
}

// Sirius models the intelligent personal assistant application (Figure 8):
// Automatic Speech Recognition, Image Matching and Question-Answering. QA is
// the heaviest, most tail-spread stage; IMM is light and comparatively
// memory-bound — which is why boosting IMM is the paper's example of a bad
// boosting decision (Figure 2).
func Sirius() App {
	return App{Name: "sirius", Stages: []StageProfile{
		{Name: "ASR", Kind: stage.Pipeline, Work: WorkModel{Median: 300 * time.Millisecond, Sigma: 0.30}, MemBound: 0.15},
		{Name: "IMM", Kind: stage.Pipeline, Work: WorkModel{Median: 130 * time.Millisecond, Sigma: 0.25}, MemBound: 0.35},
		{Name: "QA", Kind: stage.Pipeline, Work: WorkModel{Median: 700 * time.Millisecond, Sigma: 0.55}, MemBound: 0.25},
	}}
}

// NLP models the Senna natural-language pipeline (Figure 9): part-of-speech
// tagging, constituency parsing (PSG) and semantic role labelling. Parsing
// dominates, POS is nearly free.
func NLP() App {
	return App{Name: "nlp", Stages: []StageProfile{
		{Name: "POS", Kind: stage.Pipeline, Work: WorkModel{Median: 90 * time.Millisecond, Sigma: 0.20}, MemBound: 0.20},
		{Name: "PSG", Kind: stage.Pipeline, Work: WorkModel{Median: 520 * time.Millisecond, Sigma: 0.50}, MemBound: 0.25},
		{Name: "SRL", Kind: stage.Pipeline, Work: WorkModel{Median: 330 * time.Millisecond, Sigma: 0.40}, MemBound: 0.30},
	}}
}

// WebSearch models the search application (Apache Nutch in the paper) in
// the Table 3 organization: a pool of replicated leaf (index) services, each
// query served by one replica, followed by a light aggregation stage. The
// replica pool is what PowerChief's instance withdraw consolidates in the
// QoS power-saving comparison (Figure 14).
func WebSearch() App {
	return App{Name: "websearch", Stages: []StageProfile{
		{Name: "leaf", Kind: stage.Pipeline, Work: WorkModel{Median: 90 * time.Millisecond, Sigma: 0.40}, MemBound: 0.40},
		{Name: "agg", Kind: stage.Pipeline, Work: WorkModel{Median: 15 * time.Millisecond, Sigma: 0.20}, MemBound: 0.20},
	}}
}

// WebSearchFanOut is the sharded-index variant: every query fans out to all
// leaf shards and joins on the slowest before aggregation. Shard sizes are
// skewed, so per-instance DVFS matters while instance withdraw is
// impossible (shards hold state). Used by the fan-out example and the
// stage-organization ablation.
func WebSearchFanOut() App {
	return App{Name: "websearch-fanout", Stages: []StageProfile{
		{Name: "leaf", Kind: stage.FanOut, Work: WorkModel{Median: 90 * time.Millisecond, Sigma: 0.40}, MemBound: 0.40, Skew: 0.35},
		{Name: "agg", Kind: stage.Pipeline, Work: WorkModel{Median: 15 * time.Millisecond, Sigma: 0.20}, MemBound: 0.20},
	}}
}

// ByName returns a built-in application by name.
func ByName(name string) (App, error) {
	switch name {
	case "sirius":
		return Sirius(), nil
	case "nlp":
		return NLP(), nil
	case "websearch":
		return WebSearch(), nil
	default:
		return App{}, fmt.Errorf("app: unknown application %q (want sirius, nlp or websearch)", name)
	}
}

// Validate checks the application definition.
func (a App) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("app: needs a name")
	}
	if len(a.Stages) == 0 {
		return fmt.Errorf("app %s: needs at least one stage", a.Name)
	}
	for _, sp := range a.Stages {
		if sp.Name == "" {
			return fmt.Errorf("app %s: unnamed stage", a.Name)
		}
		if sp.Work.Median <= 0 {
			return fmt.Errorf("app %s stage %s: work median must be positive", a.Name, sp.Name)
		}
		if sp.Work.Sigma < 0 {
			return fmt.Errorf("app %s stage %s: negative sigma", a.Name, sp.Name)
		}
		if sp.MemBound < 0 || sp.MemBound > 1 {
			return fmt.Errorf("app %s stage %s: mem-bound fraction outside [0,1]", a.Name, sp.Name)
		}
		if sp.Skew < 0 || sp.Skew >= 1 {
			return fmt.Errorf("app %s stage %s: skew outside [0,1)", a.Name, sp.Name)
		}
	}
	return nil
}

// Specs produces the stage.Spec list for this application with the given
// per-stage instance counts and a uniform initial frequency level. A nil
// instances slice means one instance per stage.
func (a App) Specs(instances []int, level cmp.Level) ([]stage.Spec, error) {
	if instances == nil {
		instances = make([]int, len(a.Stages))
		for i := range instances {
			instances[i] = 1
		}
	}
	if len(instances) != len(a.Stages) {
		return nil, fmt.Errorf("app %s: %d instance counts for %d stages", a.Name, len(instances), len(a.Stages))
	}
	specs := make([]stage.Spec, len(a.Stages))
	for i, sp := range a.Stages {
		specs[i] = stage.Spec{
			Name:      sp.Name,
			Kind:      sp.Kind,
			Profile:   sp.Profile(),
			Instances: instances[i],
			Level:     level,
		}
	}
	return specs, nil
}

// DrawWork samples the per-stage work matrix for one query: one branch for
// pipeline stages, branches[i] independent draws for fan-out stages.
func (a App) DrawWork(rng *rand.Rand, branches []int) [][]time.Duration {
	work := make([][]time.Duration, len(a.Stages))
	for i, sp := range a.Stages {
		n := 1
		if sp.Kind == stage.FanOut {
			n = branches[i]
			if n < 1 {
				n = 1
			}
		}
		row := make([]time.Duration, n)
		for b := range row {
			d := sp.Work.Draw(rng)
			if sp.Kind == stage.FanOut && sp.Skew > 0 && n > 1 {
				m := 1 - sp.Skew + 2*sp.Skew*float64(b)/float64(n-1)
				d = time.Duration(float64(d) * m)
			}
			row[b] = d
		}
		work[i] = row
	}
	return work
}

// CapacityQPS returns the sustainable query throughput of a configuration:
// the minimum over stages of instances divided by mean serving time. For a
// fan-out stage every instance serves every query, so its capacity is a
// single branch's service rate. Load levels are defined relative to this.
func (a App) CapacityQPS(instances []int, level cmp.Level) float64 {
	capacity := math.Inf(1)
	for i, sp := range a.Stages {
		serve := sp.MeanServing(level).Seconds()
		var c float64
		if sp.Kind == stage.FanOut {
			// Every leaf serves every query; the slowest (most skewed)
			// shard bounds throughput.
			c = 1 / (serve * (1 + sp.Skew))
		} else {
			c = float64(instances[i]) / serve
		}
		if c < capacity {
			capacity = c
		}
	}
	return capacity
}

// HeaviestStage returns the index of the stage with the largest mean serving
// demand — the a-priori bottleneck under equal provisioning.
func (a App) HeaviestStage() int {
	best, bestMean := 0, time.Duration(0)
	for i, sp := range a.Stages {
		if m := sp.Work.Mean(); m > bestMean {
			best, bestMean = i, m
		}
	}
	return best
}
