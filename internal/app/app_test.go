package app

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/stage"
)

func TestBuiltinAppsValid(t *testing.T) {
	for _, a := range []App{Sirius(), NLP(), WebSearch()} {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"sirius", "nlp", "websearch"} {
		a, err := ByName(name)
		if err != nil || a.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, a.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestSiriusShape(t *testing.T) {
	s := Sirius()
	if len(s.Stages) != 3 {
		t.Fatalf("Sirius has %d stages, want 3 (ASR, IMM, QA)", len(s.Stages))
	}
	names := []string{"ASR", "IMM", "QA"}
	for i, want := range names {
		if s.Stages[i].Name != want {
			t.Errorf("stage %d = %s, want %s", i, s.Stages[i].Name, want)
		}
	}
	// QA dominates; IMM is the lightest — the Figure 2 premise.
	if s.HeaviestStage() != 2 {
		t.Errorf("heaviest Sirius stage = %d, want QA", s.HeaviestStage())
	}
	if s.Stages[1].Work.Mean() >= s.Stages[0].Work.Mean() {
		t.Error("IMM should be lighter than ASR")
	}
}

func TestNLPShape(t *testing.T) {
	n := NLP()
	if n.HeaviestStage() != 1 {
		t.Errorf("heaviest NLP stage = %d, want PSG", n.HeaviestStage())
	}
}

func TestWebSearchShape(t *testing.T) {
	w := WebSearch()
	if w.Stages[0].Kind != stage.Pipeline {
		t.Error("Web Search leaves are a replica pool (pipeline stage)")
	}
	if w.Stages[1].Kind != stage.Pipeline {
		t.Error("Web Search aggregation must be a pipeline stage")
	}
	f := WebSearchFanOut()
	if f.Stages[0].Kind != stage.FanOut {
		t.Error("fan-out variant leaves must fan out")
	}
	if f.Stages[0].Skew <= 0 {
		t.Error("fan-out shards should be skewed")
	}
	if err := f.Validate(); err != nil {
		t.Error(err)
	}
}

func TestWorkModelMean(t *testing.T) {
	w := WorkModel{Median: 100 * time.Millisecond, Sigma: 0.5}
	want := 100 * math.Exp(0.125)
	if got := w.Mean(); math.Abs(got.Seconds()*1000-want) > 1e-6 {
		t.Errorf("Mean = %v, want %.3fms", got, want)
	}
	// Zero sigma degenerates to the median.
	d := WorkModel{Median: 42 * time.Millisecond}
	if d.Mean() != 42*time.Millisecond || d.Draw(rand.New(rand.NewSource(1))) != 42*time.Millisecond {
		t.Error("degenerate model should return the median")
	}
}

func TestWorkModelDrawStatistics(t *testing.T) {
	w := WorkModel{Median: 100 * time.Millisecond, Sigma: 0.4}
	rng := rand.New(rand.NewSource(42))
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += w.Draw(rng).Seconds()
	}
	got := sum / float64(n) * 1000
	want := w.Mean().Seconds() * 1000
	if math.Abs(got-want)/want > 0.03 {
		t.Errorf("empirical mean %.2fms deviates from analytic %.2fms", got, want)
	}
}

func TestSpecsDefaultsAndMismatch(t *testing.T) {
	s := Sirius()
	specs, err := s.Specs(nil, cmp.MidLevel)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		if sp.Instances != 1 || sp.Level != cmp.MidLevel {
			t.Errorf("default spec %s = %d inst @%v", sp.Name, sp.Instances, sp.Level)
		}
		if err := sp.Validate(); err != nil {
			t.Error(err)
		}
	}
	if _, err := s.Specs([]int{1, 2}, cmp.MidLevel); err == nil {
		t.Error("mismatched instance-count length accepted")
	}
	specs, err = s.Specs([]int{4, 2, 5}, cmp.MaxLevel)
	if err != nil {
		t.Fatal(err)
	}
	if specs[2].Instances != 5 {
		t.Error("explicit instance counts not honoured")
	}
}

func TestDrawWorkShape(t *testing.T) {
	w := WebSearchFanOut()
	rng := rand.New(rand.NewSource(7))
	work := w.DrawWork(rng, []int{10, 1})
	if len(work) != 2 || len(work[0]) != 10 || len(work[1]) != 1 {
		t.Fatalf("work shape = (%d,%d)", len(work[0]), len(work[1]))
	}
	// Zero branch count clamps to one.
	work = w.DrawWork(rng, []int{0, 1})
	if len(work[0]) != 1 {
		t.Error("zero fan-out branches not clamped to 1")
	}
	// Pipeline stages always draw a single branch.
	s := Sirius()
	work = s.DrawWork(rng, []int{9, 9, 9})
	for i := range work {
		if len(work[i]) != 1 {
			t.Errorf("pipeline stage %d drew %d branches", i, len(work[i]))
		}
	}
}

func TestCapacityDominatedByHeaviestStage(t *testing.T) {
	s := Sirius()
	cap1 := s.CapacityQPS([]int{1, 1, 1}, cmp.MidLevel)
	qa := s.Stages[2]
	want := 1 / qa.MeanServing(cmp.MidLevel).Seconds()
	if math.Abs(cap1-want)/want > 1e-9 {
		t.Errorf("capacity = %v, want %v (QA-bound)", cap1, want)
	}
	// Doubling QA instances raises capacity; it becomes ASR-bound.
	cap2 := s.CapacityQPS([]int{1, 1, 2}, cmp.MidLevel)
	if cap2 <= cap1 {
		t.Error("extra QA instance did not raise capacity")
	}
	// Higher frequency raises capacity.
	cap3 := s.CapacityQPS([]int{1, 1, 1}, cmp.MaxLevel)
	if cap3 <= cap1 {
		t.Error("higher frequency did not raise capacity")
	}
}

func TestFanOutCapacityIgnoresLeafCount(t *testing.T) {
	w := WebSearchFanOut()
	c10 := w.CapacityQPS([]int{10, 1}, cmp.MaxLevel)
	c20 := w.CapacityQPS([]int{20, 1}, cmp.MaxLevel)
	if math.Abs(c10-c20) > 1e-9 {
		t.Error("fan-out capacity should not scale with leaf count (every leaf serves every query)")
	}
}

func TestValidateRejectsBadApps(t *testing.T) {
	good := StageProfile{Name: "S", Work: WorkModel{Median: time.Millisecond}}
	cases := map[string]App{
		"no name":    {Stages: []StageProfile{good}},
		"no stages":  {Name: "x"},
		"bad median": {Name: "x", Stages: []StageProfile{{Name: "S"}}},
		"bad sigma":  {Name: "x", Stages: []StageProfile{{Name: "S", Work: WorkModel{Median: 1, Sigma: -1}}}},
		"bad mem":    {Name: "x", Stages: []StageProfile{{Name: "S", Work: WorkModel{Median: 1}, MemBound: 2}}},
		"no stage name": {Name: "x", Stages: []StageProfile{
			{Work: WorkModel{Median: 1}},
		}},
	}
	for name, a := range cases {
		if a.Validate() == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// Property: draws are always positive and the profile's mean serving time
// decreases (weakly) with frequency.
func TestPropertyDrawPositiveAndServingMonotone(t *testing.T) {
	f := func(seed int64, li uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, a := range []App{Sirius(), NLP(), WebSearch()} {
			for _, sp := range a.Stages {
				if sp.Work.Draw(rng) <= 0 {
					return false
				}
				l := cmp.Level(int(li) % (cmp.NumLevels - 1))
				if sp.MeanServing(l+1) > sp.MeanServing(l) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
