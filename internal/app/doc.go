// Package app defines the multi-stage applications the paper evaluates —
// Sirius (ASR→IMM→QA, Figure 8), NLP/Senna (POS→PSG→SRL, Figure 9) and Web
// Search (leaf fan-out → aggregation) — as stage work models: per-stage
// service-demand distributions plus per-service frequency speedup profiles.
//
// The real Sirius/Senna/Nutch binaries are substituted by synthetic demand
// distributions (see DESIGN.md): PowerChief observes only queuing/serving
// times and queue lengths, so lognormal demands with service-specific
// medians, tail spreads and memory-boundness exercise the identical control
// paths. Demands are expressed at the reference (lowest) frequency; the
// roofline profile maps them to serving time at any DVFS level.
//
// Entry points: Sirius, NLP and WebSearch build the three evaluated
// applications, ByName resolves one from a CLI flag. App.Specs turns an App
// into stage.Spec values for any engine; App.DrawWork draws one query's work
// matrix for the generators in internal/workload and internal/loadgen. See
// ARCHITECTURE.md for where applications sit in the overall query path.
package app
