package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"powerchief/internal/cmp"
)

// Duration wraps time.Duration with human-readable JSON ("25s").
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler, accepting both "25s" strings
// and integer nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("config: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("config: duration must be a string or integer nanoseconds")
	}
	*d = Duration(n)
	return nil
}

// Std returns the standard-library duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Experiment is a complete experiment description.
type Experiment struct {
	// Name labels the experiment in output.
	Name string `json:"name"`
	// App selects a built-in application: sirius, nlp, websearch.
	App string `json:"app"`
	// Instances is the initial per-stage instance count (empty = 1 each).
	Instances []int `json:"instances,omitempty"`
	// LevelGHz is the initial core frequency in GHz (e.g. 1.8).
	LevelGHz float64 `json:"level_ghz"`
	// BudgetWatts is the application power budget (0 = derive from the
	// initial configuration).
	BudgetWatts float64 `json:"budget_watts"`
	// Policy selects the control policy: baseline, freq-boost, inst-boost,
	// powerchief, pegasus, saver.
	Policy string `json:"policy"`
	// QoS is the latency target for pegasus/saver.
	QoS Duration `json:"qos,omitempty"`
	// AdjustInterval is the control period.
	AdjustInterval Duration `json:"adjust_interval"`
	// BalanceThreshold suppresses reallocation below this metric spread.
	BalanceThreshold Duration `json:"balance_threshold"`
	// WithdrawInterval is the §6.2 withdraw period (0 disables withdraw).
	WithdrawInterval Duration `json:"withdraw_interval"`
	// LoadLevel selects low/medium/high (utilization of reference capacity).
	LoadLevel string `json:"load_level"`
	// Duration is the load-generation horizon.
	Duration Duration `json:"duration"`
	// Seed drives all randomness.
	Seed int64 `json:"seed"`
}

// MitigationSetup returns the Table 2 configuration for the given built-in
// application and load level: one instance per stage at 1.8 GHz under a
// 13.56 W budget, 25 s adjust interval, 1 s balance threshold, 150 s
// withdraw interval, 900 s runs.
func MitigationSetup(app, policy, load string, seed int64) Experiment {
	return Experiment{
		Name:             fmt.Sprintf("%s-%s-%s", app, policy, load),
		App:              app,
		LevelGHz:         1.8,
		BudgetWatts:      13.56,
		Policy:           policy,
		AdjustInterval:   Duration(25 * time.Second),
		BalanceThreshold: Duration(time.Second),
		WithdrawInterval: Duration(150 * time.Second),
		LoadLevel:        load,
		Duration:         Duration(900 * time.Second),
		Seed:             seed,
	}
}

// QoSSetup returns the Table 3 configuration: over-provisioned instances at
// the maximum frequency, with the per-application QoS target and adjust
// interval from the paper.
func QoSSetup(app, policy string, seed int64) (Experiment, error) {
	e := Experiment{
		Name:      fmt.Sprintf("%s-%s-qos", app, policy),
		App:       app,
		LevelGHz:  2.4,
		Policy:    policy,
		LoadLevel: "medium",
		Seed:      seed,
	}
	switch app {
	case "sirius":
		e.Instances = []int{4, 2, 5}
		e.QoS = Duration(2 * time.Second)
		e.AdjustInterval = Duration(10 * time.Second)
		e.Duration = Duration(900 * time.Second)
	case "websearch":
		e.Instances = []int{10, 1}
		e.QoS = Duration(250 * time.Millisecond)
		e.AdjustInterval = Duration(2 * time.Second)
		e.Duration = Duration(200 * time.Second)
	default:
		return Experiment{}, fmt.Errorf("config: no Table 3 setup for app %q", app)
	}
	return e, nil
}

// Validate checks the experiment description.
func (e Experiment) Validate() error {
	if e.Name == "" {
		return fmt.Errorf("config: experiment needs a name")
	}
	switch e.App {
	case "sirius", "nlp", "websearch":
	default:
		return fmt.Errorf("config: unknown app %q", e.App)
	}
	switch e.Policy {
	case "baseline", "freq-boost", "inst-boost", "powerchief":
	case "pegasus", "saver":
		if e.QoS <= 0 {
			return fmt.Errorf("config: policy %q needs a positive qos", e.Policy)
		}
	default:
		return fmt.Errorf("config: unknown policy %q", e.Policy)
	}
	if e.LevelGHz < float64(cmp.MinGHz) || e.LevelGHz > float64(cmp.MaxGHz) {
		return fmt.Errorf("config: level %.2f GHz outside the %v–%v ladder", e.LevelGHz, cmp.MinGHz, cmp.MaxGHz)
	}
	if e.BudgetWatts < 0 {
		return fmt.Errorf("config: negative budget")
	}
	for i, n := range e.Instances {
		if n < 1 {
			return fmt.Errorf("config: stage %d instance count %d", i, n)
		}
	}
	switch e.LoadLevel {
	case "low", "medium", "high":
	default:
		return fmt.Errorf("config: unknown load level %q", e.LoadLevel)
	}
	if e.Duration <= 0 {
		return fmt.Errorf("config: duration must be positive")
	}
	if e.AdjustInterval < 0 || e.BalanceThreshold < 0 || e.WithdrawInterval < 0 {
		return fmt.Errorf("config: negative control interval")
	}
	return nil
}

// Level converts the configured GHz to the discrete ladder level.
func (e Experiment) Level() cmp.Level { return cmp.LevelOf(cmp.GHz(e.LevelGHz)) }

// Write serializes the experiment as indented JSON.
func (e Experiment) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// Read parses and validates an experiment from JSON.
func Read(r io.Reader) (Experiment, error) {
	var e Experiment
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&e); err != nil {
		return Experiment{}, fmt.Errorf("config: %w", err)
	}
	if err := e.Validate(); err != nil {
		return Experiment{}, err
	}
	return e, nil
}

// Load reads an experiment from a file.
func Load(path string) (Experiment, error) {
	f, err := os.Open(path)
	if err != nil {
		return Experiment{}, err
	}
	defer f.Close()
	return Read(f)
}

// Save writes an experiment to a file.
func (e Experiment) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return e.Write(f)
}
