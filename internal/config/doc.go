// Package config embodies the paper's experiment setups — Table 2 (latency
// mitigation under the power constraint) and Table 3 (power conservation
// under a QoS target) — as structured, validated, JSON-serializable
// configurations, so experiments can be described in files and reproduced
// exactly.
//
// Entry points: MitigationSetup and QoSSetup construct the two canonical
// table setups; Load and Read parse an Experiment from a file or stream,
// rejecting unknown fields so typos fail loudly. Experiment.Validate is the
// single gate every consumer runs before building engines from a config.
package config
