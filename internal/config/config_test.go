package config

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"powerchief/internal/cmp"
)

func TestMitigationSetupMatchesTable2(t *testing.T) {
	e := MitigationSetup("sirius", "powerchief", "high", 7)
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.BudgetWatts != 13.56 {
		t.Error("budget != 13.56W")
	}
	if e.AdjustInterval.Std() != 25*time.Second {
		t.Error("adjust interval != 25s")
	}
	if e.BalanceThreshold.Std() != time.Second {
		t.Error("balance threshold != 1s")
	}
	if e.WithdrawInterval.Std() != 150*time.Second {
		t.Error("withdraw interval != 150s")
	}
	if e.Level() != cmp.MidLevel {
		t.Error("level != 1.8GHz")
	}
	if e.Duration.Std() != 900*time.Second {
		t.Error("duration != 900s")
	}
}

func TestQoSSetupMatchesTable3(t *testing.T) {
	s, err := QoSSetup("sirius", "saver", 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.Instances; len(got) != 3 || got[0] != 4 || got[1] != 2 || got[2] != 5 {
		t.Errorf("sirius instances = %v, want 4,2,5", got)
	}
	if s.QoS.Std() != 2*time.Second || s.AdjustInterval.Std() != 10*time.Second {
		t.Error("sirius QoS setup mismatch")
	}
	if s.Level() != cmp.MaxLevel {
		t.Error("Table 3 services run at maximum frequency")
	}

	w, err := QoSSetup("websearch", "pegasus", 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Instances; len(got) != 2 || got[0] != 10 || got[1] != 1 {
		t.Errorf("websearch instances = %v, want 10,1", got)
	}
	if w.QoS.Std() != 250*time.Millisecond || w.AdjustInterval.Std() != 2*time.Second {
		t.Error("websearch QoS setup mismatch")
	}

	if _, err := QoSSetup("nlp", "saver", 7); err == nil {
		t.Error("Table 3 has no NLP setup")
	}
}

func TestValidateRejectsBadExperiments(t *testing.T) {
	good := MitigationSetup("sirius", "powerchief", "high", 1)
	mutations := map[string]func(*Experiment){
		"no name":        func(e *Experiment) { e.Name = "" },
		"bad app":        func(e *Experiment) { e.App = "doom" },
		"bad policy":     func(e *Experiment) { e.Policy = "yolo" },
		"saver w/o qos":  func(e *Experiment) { e.Policy = "saver"; e.QoS = 0 },
		"bad level":      func(e *Experiment) { e.LevelGHz = 5.0 },
		"neg budget":     func(e *Experiment) { e.BudgetWatts = -1 },
		"bad instances":  func(e *Experiment) { e.Instances = []int{0} },
		"bad load":       func(e *Experiment) { e.LoadLevel = "extreme" },
		"zero duration":  func(e *Experiment) { e.Duration = 0 },
		"neg interval":   func(e *Experiment) { e.AdjustInterval = -1 },
		"neg threshold":  func(e *Experiment) { e.BalanceThreshold = -1 },
		"neg w-interval": func(e *Experiment) { e.WithdrawInterval = -1 },
	}
	for name, mut := range mutations {
		e := good
		mut(&e)
		if e.Validate() == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	e := MitigationSetup("nlp", "inst-boost", "medium", 99)
	path := filepath.Join(t.TempDir(), "exp.json")
	if err := e.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != e.Name || got.Seed != 99 || got.AdjustInterval != e.AdjustInterval {
		t.Errorf("round trip lost data: %+v", got)
	}
}

func TestReadRejectsUnknownFieldsAndBadJSON(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"nonsense": true}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Read(strings.NewReader(`{`)); err == nil {
		t.Error("truncated JSON accepted")
	}
	// Valid JSON, invalid experiment.
	if _, err := Read(strings.NewReader(`{"name":"x","app":"doom","policy":"baseline","level_ghz":1.8,"load_level":"low","duration":"10s"}`)); err == nil {
		t.Error("invalid experiment accepted")
	}
}

func TestDurationJSONForms(t *testing.T) {
	var d Duration
	if err := d.UnmarshalJSON([]byte(`"90s"`)); err != nil || d.Std() != 90*time.Second {
		t.Errorf("string form: %v %v", d, nil)
	}
	if err := d.UnmarshalJSON([]byte(`1000000000`)); err != nil || d.Std() != time.Second {
		t.Errorf("integer form: %v", d)
	}
	if err := d.UnmarshalJSON([]byte(`"bogus"`)); err == nil {
		t.Error("bad duration string accepted")
	}
	if err := d.UnmarshalJSON([]byte(`{"x":1}`)); err == nil {
		t.Error("object accepted as duration")
	}
	b, err := Duration(25 * time.Second).MarshalJSON()
	if err != nil || string(b) != `"25s"` {
		t.Errorf("MarshalJSON = %s, %v", b, err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}
