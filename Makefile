GO ?= go

# Pinned staticcheck version, matching .github/workflows/ci.yml.
STATICCHECK_VERSION ?= 2024.1.1

.PHONY: all build vet staticcheck test race check ci

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Runs staticcheck when the tool is on PATH; CI installs the pinned version,
# locally it is optional (no network fetch from a bare `make check`).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

test:
	$(GO) test ./...

# Race-focused pass over the concurrency-heavy packages: the RPC transport,
# the distributed control plane (including the chaos tests), the fleet
# coordinator, the stage engine, and the telemetry subsystem (ring buffers +
# registry under concurrent writers).
race:
	$(GO) test -race ./internal/rpc/... ./internal/dist/... ./internal/fleet/... ./internal/stage/... ./internal/telemetry/... ./internal/controlplane/... ./internal/live/...

# The fleet chaos smoke: a coordinator over three proxied node services,
# kill one mid-run, assert Σ granted ≤ budget at every epoch plus reclaim
# and re-admission. Exits non-zero on any violation.
.PHONY: fleet-smoke
fleet-smoke:
	$(GO) run ./examples/fleet

# The full local gate: what CI runs.
check: vet staticcheck build test race

ci: check
