GO ?= go

.PHONY: all build vet test race check ci

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-focused pass over the concurrency-heavy packages: the RPC transport,
# the distributed control plane (including the chaos tests), and the stage
# engine.
race:
	$(GO) test -race ./internal/rpc/... ./internal/dist/... ./internal/stage/...

# The full local gate: what CI runs.
check: vet build test race

ci: check
