GO ?= go

# Pinned staticcheck version, matching .github/workflows/ci.yml.
STATICCHECK_VERSION ?= 2024.1.1

.PHONY: all build vet staticcheck test race docs-lint check ci

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Runs staticcheck when the tool is on PATH; CI installs the pinned version,
# locally it is optional (no network fetch from a bare `make check`).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

test:
	$(GO) test ./...

# Documentation gate: relative links in the top-level docs must resolve,
# and every internal/* package must carry a non-empty doc.go.
docs-lint:
	sh scripts/docs-lint.sh

# Race-focused pass over the concurrency-heavy packages: the RPC transport,
# the distributed control plane (including the chaos tests), the fleet
# coordinator, the budget arbiter (chaos property tests), the stage engine,
# the telemetry subsystem (ring buffers + registry under concurrent writers),
# the decision engine + statistics pipeline, the decision-trace recorder and
# replay arena, the multi-tenant harness, and the distributed benchmark
# harness.
race:
	$(GO) test -race ./internal/rpc/... ./internal/dist/... ./internal/fleet/... ./internal/arbiter/... ./internal/stage/... ./internal/telemetry/... ./internal/core/... ./internal/stats/... ./internal/replay/... ./internal/controlplane/... ./internal/live/... ./internal/benchnet/... ./internal/harness/...

# The fleet chaos smoke: a coordinator over three proxied node services,
# kill one mid-run, assert Σ granted ≤ budget at every epoch plus reclaim
# and re-admission. Exits non-zero on any violation.
.PHONY: fleet-smoke
fleet-smoke:
	$(GO) run ./examples/fleet

# The distributed benchmark smoke: spawn 4 local agent processes, fan one
# sharded schedule out over real RPC against a shared dist deployment, and
# merge the per-agent histograms into bench-net.json. The spec must match
# results/BENCH_benchnet.json exactly, or bench-cmp refuses the comparison.
.PHONY: bench-net bench-cmp
bench-net:
	$(GO) run ./cmd/powerbench -agents.spawn 4 -target dist -app websearch \
		-instances 2,1 -timescale 0.3 -arrivals constant -rate 20 \
		-duration 4s -warmup 500ms -workers 8 -seed 11 -json bench-net.json

# The benchmark regression gate: compare the fresh distributed run against
# the checked-in baseline. Thresholds are loose — the gate catches structural
# regressions (a broken merge, a stalled shard, a latency cliff), not
# scheduler jitter. Exits 1 on regression, 2 if the runs are incomparable.
bench-cmp: bench-net
	$(GO) run ./cmd/powerbench cmp -max.qps.drop 25 -max.p50 150 \
		-max.p99 200 -max.p999 250 results/BENCH_benchnet.json bench-net.json

# The multi-tenant arbitration smoke: run the deterministic two-app DES
# scenario twice (static halving vs the cross-app arbiter) and gate the
# fresh figures against the checked-in artifact — Σ per-tenant grants must
# stay under the chip budget at every epoch and arbitration must still beat
# the static split on combined p99. Exits 1 on regression, 2 if incomparable.
.PHONY: bench-tenant
bench-tenant:
	$(GO) run ./cmd/powerbench tenant -check results/BENCH_multitenant.json

# The arbitration-strategy benchmark gate: re-run the skewed-bottleneck
# fleet scenario (Marginal vs Proportional) and compare against the
# checked-in artifact — params must match exactly, the boostable-tail win
# must hold within tolerance. Exits 1 on regression, 2 if incomparable.
.PHONY: bench-arbiter
bench-arbiter:
	$(GO) run ./cmd/powerbench arbiter -json bench-arbiter.json
	$(GO) run ./cmd/powerbench cmp results/BENCH_arbiter.json bench-arbiter.json

# The decision-trace replay smoke: record a short DES trace under
# PowerChief, then replay it through the offline arena against three
# candidate policies. `powerbench replay` exits 1 unless the recording
# policy reproduces every recorded plan byte-identically from the
# snapshots alone — the determinism gate of DESIGN.md §5l.
.PHONY: bench-replay
bench-replay:
	$(GO) run ./cmd/powerbench -target des -app sirius -rate 3 -duration 120s \
		-warmup 10s -policy powerchief -ctl.interval 25s -seed 7 \
		-trace.out bench-replay-trace.jsonl.gz
	$(GO) run ./cmd/powerbench replay -trace bench-replay-trace.jsonl.gz \
		-policy powerchief,fairness,marginal -json bench-replay.json

# The full local gate: what CI runs.
check: vet staticcheck build test race docs-lint

ci: check
