module powerchief

go 1.22
