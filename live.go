package powerchief

import (
	"time"

	"powerchief/internal/core"
	"powerchief/internal/live"
	"powerchief/internal/query"
)

// The live surface runs the framework as a real runtime — goroutine workers
// in (optionally compressed) wall-clock time — instead of the simulator.
// The same policies drive both.

type (
	// LiveCluster is a running real-time deployment.
	LiveCluster = live.Cluster
	// LiveOptions configures a live cluster.
	LiveOptions = live.Options
	// LiveController drives a policy against a live cluster on a ticker.
	LiveController = live.Controller
	// Query is a request flowing through the pipeline.
	Query = query.Query
	// Aggregator is the Command Center's statistics store.
	Aggregator = core.Aggregator
)

// NewLiveCluster starts a live deployment of the application: instances[i]
// workers for stage i (nil = one each), all at the given level.
func NewLiveCluster(a App, instances []int, level Level, opts LiveOptions) (*LiveCluster, error) {
	if instances == nil {
		instances = make([]int, len(a.Stages))
		for i := range instances {
			instances[i] = 1
		}
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	specs := make([]live.StageSpec, len(a.Stages))
	for i, sp := range a.Stages {
		n := 1
		if i < len(instances) {
			n = instances[i]
		}
		specs[i] = live.StageSpec{
			Name:      sp.Name,
			Kind:      sp.Kind,
			Profile:   sp.Profile(),
			Instances: n,
			Level:     level,
		}
	}
	return live.NewCluster(opts, specs)
}

// StartLiveController begins adjusting the cluster with the policy every
// virtual interval. Register the aggregator as a completion callback first:
//
//	agg := powerchief.NewAggregatorFor(cluster)
//	cluster.OnComplete(agg.Ingest)
//	ctl := powerchief.StartLiveController(cluster, agg, policy, 25*time.Second)
//	defer ctl.Stop()
func StartLiveController(c *LiveCluster, agg *Aggregator, policy Policy, interval time.Duration) *LiveController {
	return live.StartController(c, agg, policy, interval)
}

// NewAggregatorFor builds a Command Center statistics store reading the
// cluster's clock, with the default 25 s moving window. Live clusters run
// unbounded, so the aggregator uses the constant-memory bucketed windows:
// ingest stays O(1) per record and the footprint does not grow with load
// (the DES harness keeps exact windows for deterministic reproduction).
func NewAggregatorFor(c *LiveCluster) *Aggregator {
	return core.NewAggregatorOptions(25*time.Second, c.Now, core.AggregatorOptions{
		Window: core.WindowBucketed,
	})
}

// NewQuery creates a query carrying the given per-stage demands (one row
// per stage; fan-out stages take one entry per branch).
func NewQuery(id uint64, arrival time.Duration, work [][]time.Duration) *Query {
	return query.New(query.ID(id), arrival, work)
}
